"""Iterative label computation for a target clock period (TurboMap core).

For a target integer clock period ``phi``, every node gets a label
``l(v)`` — intuitively its phi-normalized sequential arrival time in the
best mapping.  Following TurboMap [11] (and Pan-Liu [19]), labels are
computed as monotonically increasing lower bounds:

* ``l(PI) = 0`` (fixed); every gate starts at 1;
* one *update* of gate ``v`` computes ``L(v) = max(l(u) - phi * w(e))``
  over its fanin edges and raises ``l(v)`` to ``L(v)`` if the expanded
  circuit ``E_v`` has a K-feasible cut of height ``<= L(v)``, and to
  ``L(v) + 1`` otherwise; TurboSYN additionally tries sequential
  functional decomposition before accepting ``L(v) + 1``
  (:mod:`repro.core.seqdecomp`);
* updates repeat until a fixpoint.  The target is feasible iff a fixpoint
  is reached; labels of nodes on *positive loops* (cycles with
  ``d(C) > phi * w(C)``) grow forever instead.

Two mechanisms bound the iteration, reproducing the paper's Section 4:

* SCCs are processed in topological order (upstream labels freeze first);
* within an SCC, either the conservative ``n^2`` round bound of [21]
  (``pld=False``) or the paper's predecessor-graph **positive loop
  detection** with its ``6n`` round bound (``pld=True``, Theorem 2): after
  every round the justification graph
  ``pi[v] = {u : l(u) - phi*w(e) + 1 >= l(v)}`` is built and the SCC is
  declared infeasible as soon as no member label is *grounded* — justified
  transitively from outside the SCC (or by the trivial bound
  ``l(v) <= 1``).

Two execution engines implement the per-SCC iteration:

* ``engine="worklist"`` (the default) is *event-driven*: only gates made
  dirty by an actual label rise are re-updated.  When ``l(u)`` rises,
  the gates ``v`` with an edge ``e(u, v)`` and the gates whose last flow
  query read ``u``'s label (tracked by a reverse cone index) are
  enqueued; everything else provably cannot change (labels are monotone
  and a K-cut at an unchanged threshold over unchanged heights is
  memoized).  Queue drains are grouped into *epochs* that mirror the
  round-robin rounds exactly — a change made at topological position
  ``p`` cascades to later positions within the same epoch and to earlier
  positions in the next — so the ``6n``-round PLD accounting of
  Theorem 2 carries over with epochs counted as rounds, and the engines
  agree label-for-label.
* ``engine="rounds"`` is the classical full round-robin sweep, kept for
  differential testing and the engine benchmark.

A per-node memo keyed on the labels actually read by the last flow query
skips unchanged re-checks; the solver additionally retains the partial
expansion behind each memo entry (so the resynthesis hook can reuse it
at the same threshold, see :meth:`LabelSolver.expansion_for`) and
recycles a single :class:`~repro.comb.maxflow.SplitNetwork` arena across
all of its flow queries.

Cross-probe warm starts: labels are *antitone in phi* — a converged
label set at ``phi2`` is a valid lower bound at any ``phi1 < phi2`` — so
a solver may be seeded from a previously converged run at a larger
period (``seed_labels``), skipping every label raise the cold start
would have recomputed.  ``LabelStats.warm_seeded`` / ``warm_savings``
record the seeding.

Incremental repair (:class:`DirtySeed`): a label depends only on the
node's transitive fanin cone, so after a k-gate edit only the *dirty
region* — the forward closure of the edited nodes over fanout edges of
any weight — can change.  Given the converged fixpoint of a previous
feasible run **at the same phi** on the pre-edit circuit, every node
outside the region keeps its exact label, whole clean SCCs are skipped
(a dirty region is forward-closed, so SCCs are wholly dirty or wholly
clean — positive loop detection therefore re-runs only for touched
SCCs), and only dirty gates re-establish their cut witnesses.  The
resulting labels and verdict are bit-identical to a cold run: clean
SCCs see only clean upstream structure (unchanged, so they reconverge
to the seeded values), and dirty SCCs recompute from scratch under
identical frozen upstream labels.  ``LabelStats.dirty_nodes`` /
``labels_reused`` / ``witnesses_revalidated`` / ``sccs_skipped`` record
the repair.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import AbstractSet, Callable, List, Optional, Sequence, Set, Tuple

from repro.comb.maxflow import FLOWS, SplitNetwork
from repro.compat import np
from repro.core.expanded import (
    DEFAULT_MAX_COPIES,
    ExpansionOverflow,
    PartialExpansion,
    expand_partial,
)
from repro.core.kcut import cut_on_expansion
from repro.core.pld import grounded_members
from repro.kernel.batch import (
    BatchCutArena,
    batch_gate_profile,
    resolve_kernel,
    views_from_compiled,
    witness_feasible,
)
from repro.kernel.csr import KIND_GATE, KIND_PI
from repro.kernel.expand import (
    PackedCutArena,
    PackedExpansion,
    cut_on_packed,
    expand_partial_packed,
)
from repro.netlist.graph import NodeKind, SeqCircuit
from repro.resilience.budget import ProbeTimeout

#: Valid values of :class:`LabelSolver`'s ``engine`` parameter.
ENGINES = ("worklist", "rounds")

#: Valid values of :class:`LabelSolver`'s ``kernel`` parameter:
#: ``"compiled"`` runs expansions and cut queries on the circuit's flat
#: CSR arrays with packed-int copies (:mod:`repro.kernel`);
#: ``"object"`` is the tuple-and-dict engine, retained for differential
#: testing; ``"vector"`` layers the numpy batch kernel
#: (:mod:`repro.kernel.batch`) on top of the compiled representation —
#: each label round's independent cut queries are speculatively
#: precomputed through one stacked level-BFS flow solve, with a
#: vectorized height prefilter skipping trivially decided queries.  The
#: pseudo-kernel ``"auto"`` resolves to ``"vector"`` or ``"compiled"``
#: from the microbench-measured crossover
#: (:func:`repro.kernel.batch.resolve_kernel`), and ``"vector"``
#: degrades to ``"compiled"`` when numpy is not installed.  All kernels
#: produce bit-identical labels, cuts, and mapped networks.
KERNELS = ("compiled", "object", "vector")


@dataclass
class LabelStats:
    """Counters describing one feasibility run (used by the PLD bench).

    The ``t_*`` fields are wall-clock seconds spent in each stage of the
    label computation (the run telemetry serialized by
    :mod:`repro.perf.report`): total run time, expanded-circuit
    construction, max-flow cut queries, and positive-loop-detection
    checks.  ``warm_seeded`` counts runs seeded from a converged
    larger-phi label set, ``warm_savings`` the total label raises such
    seeds skipped, and ``expansions_reused`` the partial expansions the
    resynthesis hook reused instead of rebuilding.

    ``dinic_phases`` / ``arcs_advanced`` are the Dinic flow engine's
    deterministic work counters (level-graph BFS phases run and arcs
    examined by the blocking-flow search, summed over all cut queries);
    both stay 0 under the Edmonds-Karp engine.  Under the vector kernel
    they measure the *batched* search (stacked phases and arcs), so they
    are comparable between vector runs but not across kernels.

    The batch-kernel counters (all 0 under scalar kernels):
    ``batched_queries`` counts cut queries answered from a speculative
    batch solve instead of the scalar path, ``prefilter_hits`` the
    queries the vectorized height prefilter decided without building a
    flow network (recorded-witness feasible, or depth-1 blocked), and
    ``batch_rounds`` the stacked arena solves run.  ``flow_queries``
    counts every answered query regardless of path, so it stays
    bit-identical across kernels.

    The incremental-repair counters (all 0 on cold runs): ``dirty_nodes``
    is the dirty-region size of the edit being repaired (fixed per
    remap, so :meth:`merge` keeps the maximum rather than summing over
    probes), ``labels_reused`` the gates whose previous fixpoint label
    was adopted verbatim, ``witnesses_revalidated`` the dirty gates
    whose K-cut witness was re-established by a fresh cut query, and
    ``sccs_skipped`` the wholly clean SCCs never iterated.

    The persistent-cache counters (:mod:`repro.cache`, all 0 without a
    cache): ``outcome_cache_hits`` counts probe verdicts adopted from
    the on-disk outcome store, ``cache_probes_skipped`` the label
    fixpoints those adoptions avoided running at all (one per hit —
    kept separate so an exact-hit replay that skips the *search* can
    still report how many probes it saved), and ``cache_seeds`` the
    uncached probes warm-started from a cached larger-phi label set
    (the cross-run analogue of ``warm_seeded``).
    """

    rounds: int = 0
    updates: int = 0
    flow_queries: int = 0
    cache_hits: int = 0
    pld_checks: int = 0
    resyn_calls: int = 0
    resyn_wins: int = 0
    warm_seeded: int = 0
    warm_savings: int = 0
    expansions_reused: int = 0
    dinic_phases: int = 0
    arcs_advanced: int = 0
    batched_queries: int = 0
    prefilter_hits: int = 0
    batch_rounds: int = 0
    dirty_nodes: int = 0
    labels_reused: int = 0
    witnesses_revalidated: int = 0
    sccs_skipped: int = 0
    outcome_cache_hits: int = 0
    cache_probes_skipped: int = 0
    cache_seeds: int = 0
    t_total: float = 0.0
    t_expand: float = 0.0
    t_flow: float = 0.0
    t_pld: float = 0.0

    def merge(self, other: "LabelStats") -> None:
        """Accumulate another run's counters and timers into this one."""
        self.rounds += other.rounds
        self.updates += other.updates
        self.flow_queries += other.flow_queries
        self.cache_hits += other.cache_hits
        self.pld_checks += other.pld_checks
        self.resyn_calls += other.resyn_calls
        self.resyn_wins += other.resyn_wins
        self.warm_seeded += other.warm_seeded
        self.warm_savings += other.warm_savings
        self.expansions_reused += other.expansions_reused
        self.dinic_phases += other.dinic_phases
        self.arcs_advanced += other.arcs_advanced
        self.batched_queries += other.batched_queries
        self.prefilter_hits += other.prefilter_hits
        self.batch_rounds += other.batch_rounds
        self.dirty_nodes = max(self.dirty_nodes, other.dirty_nodes)
        self.labels_reused += other.labels_reused
        self.witnesses_revalidated += other.witnesses_revalidated
        self.sccs_skipped += other.sccs_skipped
        self.outcome_cache_hits += other.outcome_cache_hits
        self.cache_probes_skipped += other.cache_probes_skipped
        self.cache_seeds += other.cache_seeds
        self.t_total += other.t_total
        self.t_expand += other.t_expand
        self.t_flow += other.t_flow
        self.t_pld += other.t_pld


@dataclass
class DirtySeed:
    """Exact label reuse for incremental remapping.

    ``prev_labels`` must be the converged fixpoint of a previous
    *feasible* run **at the same phi** on a circuit identical outside
    the dirty region, and ``dirty`` must contain every node whose
    transitive fanin cone intersects the edit — i.e. the forward
    closure of the edited nodes over fanout edges of any weight
    (:func:`repro.incremental.dirty.dirty_region` computes it).  Under
    those preconditions the repaired run is bit-identical to a cold
    run; violating them silently corrupts labels.
    """

    prev_labels: Sequence[int]
    dirty: AbstractSet[int]


@dataclass
class LabelOutcome:
    """Result of one feasibility run at a fixed ``phi``."""

    feasible: bool
    labels: List[int]
    stats: LabelStats
    #: members of the SCC on which infeasibility was detected (empty when
    #: feasible).
    failed_scc: List[int] = field(default_factory=list)


#: Signature of a resynthesis hook: ``(solver, v, big_l) -> bool`` — may
#: consult solver labels; returns True when the node can still make label
#: ``big_l`` through decomposition.
ResynHook = Callable[["LabelSolver", int, int], bool]


class LabelSolver:
    """Label computation for one ``(circuit, k, phi)`` query."""

    #: An SCC is declared infeasible once its justification graph stays
    #: isolated from the outside for this many consecutive changed rounds.
    #: A genuinely positive loop is isolated forever, so patience costs a
    #: constant; a converging SCC can look isolated on the single round
    #: where a zero-gain cycle settles, which patience rides out.
    PLD_PATIENCE = 3

    def __init__(
        self,
        circuit: SeqCircuit,
        k: int,
        phi: int,
        resyn_hook: Optional[ResynHook] = None,
        pld: bool = True,
        extra_depth: int = 0,
        io_constrained: bool = False,
        deadline: Optional[float] = None,
        engine: str = "worklist",
        seed_labels: Optional[Sequence[int]] = None,
        max_copies: int = DEFAULT_MAX_COPIES,
        flow: str = "dinic",
        kernel: str = "compiled",
        dirty_seed: Optional[DirtySeed] = None,
    ) -> None:
        if phi < 1:
            raise ValueError("target clock period must be at least 1")
        if engine not in ENGINES:
            raise ValueError(
                f"unknown label engine {engine!r}; valid engines: "
                + ", ".join(ENGINES)
            )
        if flow not in FLOWS:
            raise ValueError(
                f"unknown flow engine {flow!r}; valid engines: "
                + ", ".join(FLOWS)
            )
        # "auto" picks vector vs compiled from the measured crossover;
        # "vector" silently degrades to "compiled" without numpy (the
        # import-guarded fallback of the optional [vector] extra).
        if kernel in ("auto", "vector"):
            kernel = resolve_kernel(kernel, len(circuit))
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; valid kernels: "
                + ", ".join(KERNELS)
            )
        self.circuit = circuit
        self.k = k
        self.phi = phi
        self.resyn_hook = resyn_hook
        self.pld = pld
        self.extra_depth = extra_depth
        self.engine = engine
        self.flow = flow
        self.kernel = kernel
        self.max_copies = max_copies
        #: Absolute ``time.monotonic()`` value by which the run must
        #: finish; checked cooperatively once per label round, raising
        #: :class:`repro.resilience.budget.ProbeTimeout` on expiry.
        self.deadline = deadline
        #: When True, primary outputs must also meet the period (the
        #: retiming-only objective of TurboMap/SeqMapII [11, 19]); the
        #: paper's setting is False — pipelining absorbs I/O paths and
        #: only loops constrain feasibility.
        self.io_constrained = io_constrained
        self.stats = LabelStats()
        n = len(circuit)
        self.labels: List[int] = [0] * n
        for g in circuit.gates:
            self.labels[g] = 1
        if seed_labels is not None:
            if len(seed_labels) != n:
                raise ValueError(
                    f"seed label vector has {len(seed_labels)} entries "
                    f"for a {n}-node circuit"
                )
            savings = 0
            for g in circuit.gates:
                seed = seed_labels[g]
                if seed > 1:
                    self.labels[g] = seed
                    savings += seed - 1
            self.stats.warm_seeded = 1
            self.stats.warm_savings = savings
        # Incremental repair: adopt the previous fixpoint verbatim for
        # every node outside the dirty region (exact, not just a lower
        # bound — see the DirtySeed contract), overriding any warm seed
        # there.  Dirty nodes keep their cold/warm initial labels and
        # are recomputed; wholly clean SCCs are skipped in _run().
        self._dirty: Optional[AbstractSet[int]] = None
        self._revalidated: Set[int] = set()
        if dirty_seed is not None:
            prev = dirty_seed.prev_labels
            if len(prev) != n:
                raise ValueError(
                    f"dirty-seed label vector has {len(prev)} entries "
                    f"for a {n}-node circuit"
                )
            dirty = dirty_seed.dirty
            self._dirty = dirty
            reused = 0
            for u in range(n):
                if u not in dirty:
                    self.labels[u] = prev[u]
            for g in circuit.gates:
                if g not in dirty:
                    reused += 1
            self.stats.dirty_nodes = len(dirty)
            self.stats.labels_reused = reused
        # Memoization: when a node's label last changed, and per node the
        # set of nodes its last flow query looked at (plus the expansion
        # itself, for reuse by the resynthesis hook at the same
        # threshold).
        self._change_stamp: List[int] = [0] * n
        self._clock = 0
        self._check_stamp: List[int] = [-1] * n
        self._check_l: List[Optional[int]] = [None] * n
        self._check_result: List[Optional[bool]] = [None] * n
        self._check_cone: List[Optional[List[int]]] = [None] * n
        self._check_expansion: List[
            Optional["PartialExpansion | PackedExpansion"]
        ] = [None] * n
        # Worklist memo guards: per gate, cone member -> the largest
        # label under which the member's frontier copies keep their tier
        # (candidate: height <= threshold; gate leaf: height <= floor).
        # While every member stays at or under its cap the expansion
        # structure — and therefore the flow verdict — is provably
        # unchanged, so the memo survives benign label rises that the
        # classical any-change invalidation would flush.  ``{}`` marks a
        # blocked expansion (permanently blocked at this threshold: PI
        # heights never change).  The rounds engine keeps the classical
        # stamp-based invalidation as the faithful baseline.
        self._check_guard: List[Optional[dict]] = [None] * n
        # Last witnessing K-cut per gate (worklist only).  A cut is a
        # structural separator of the unrolled cone, so it certifies
        # feasibility at any later threshold its member heights still
        # satisfy -- even after the guard above has expired.
        self._check_cut: List[Optional[list]] = [None] * n
        # Reverse cone index: node u -> gates whose verdict could flip
        # when l(u) crosses their guard cap.  Drives the event-driven
        # worklist: a rise of l(u) can only affect fanout gates and
        # these guarded dependents.
        self._cone_index: List[Set[int]] = [set() for _ in range(n)]
        # big_l computed by each gate's most recent update.  A fanout
        # rise whose contribution l(u) - phi*w stays at or below this
        # value cannot change the gate's fanin maximum, so the worklist
        # skips the re-update unless the riser also sits in the gate's
        # memo cone (which the cone index covers separately).
        self._last_big_l: List[int] = [-(1 << 60)] * n
        # Gates whose label is currently justified by a resynthesis win.
        # The decomposition reads labels in cones *deeper* than the
        # recorded K-cut cone (min-cuts below the threshold, cut-input
        # arrival times), which the cone index does not cover — so the
        # worklist conservatively re-enqueues every such gate after any
        # in-SCC label rise (upstream SCCs are already frozen).
        self._resyn_dep: Set[int] = set()
        # One scratch arena recycled across every cut query: the packed
        # builder (compiled/vector kernels) or the tuple-keyed
        # SplitNetwork (object kernel), each backed by the selected flow
        # engine.  The vector kernel additionally keeps a stacked batch
        # arena, numpy views of the CSR arrays, a live int64 mirror of
        # the label list, and the pending speculative batch entries.
        if kernel != "object":
            self._cc = circuit.compiled()
            self._packed_arena = PackedCutArena(flow=flow)
            self._flow_arena = None
        else:
            self._cc = None
            self._packed_arena = None
            self._flow_arena = SplitNetwork(flow=flow)
        if kernel == "vector":
            self._batch_arena: Optional[BatchCutArena] = BatchCutArena()
            self._views = views_from_compiled(self._cc)
            self._labels_arr = np.asarray(self.labels, dtype=np.int64)
        else:
            self._batch_arena = None
            self._views = None
            self._labels_arr = None
        self._batch: dict = {}
        # Opt-in invariant sanitizer (REPRO_SANITIZE=1 / --sanitize):
        # epoch monotonicity, epoch budgets, and fixpoint justification
        # checks, raising SanitizerViolation with a full Diagnostic.
        # Imported lazily at construction time — repro.analysis imports
        # this module, so a top-level import would cycle.
        self._san = None
        try:
            from repro.analysis.sanitize import label_sanitizer
        except ImportError:  # pragma: no cover - analysis always ships
            pass
        else:
            self._san = label_sanitizer(self, dirty_seed)

    # ------------------------------------------------------------------
    def height_of(self, u: int, w: int) -> int:
        """Height contribution ``l(u) - phi*w + 1`` of copy ``u^w``."""
        return self.labels[u] - self.phi * w + 1

    def _memo_valid(self, v: int, threshold: int) -> bool:
        """True when the last flow query of ``v`` still answers
        ``threshold``.

        The worklist engine proves this structurally — same threshold
        and every guarded cone member still at or under its tier cap
        (see ``_check_guard``) — so benign rises keep the memo alive.
        The rounds engine uses the classical invalidation: same
        threshold and no cone member changed since the query.
        """
        if self._check_l[v] != threshold:
            return False
        if self.engine == "worklist":
            guard = self._check_guard[v]
            if guard is None:
                return False
            labels = self.labels
            return all(labels[u] <= cap for u, cap in guard.items())
        cone = self._check_cone[v]
        if cone is None:
            return False
        stamp = self._check_stamp[v]
        change = self._change_stamp
        return all(change[u] <= stamp for u in cone)

    def _has_kcut(self, v: int, threshold: int) -> bool:
        """Memoized K-cut existence test at the given height threshold."""
        if (
            self._dirty is not None
            and v in self._dirty
            and v not in self._revalidated
        ):
            # First cut query of a dirty gate this run: its pre-edit
            # witness (if any) described the old structure and cannot be
            # trusted, so the query below re-establishes it from scratch.
            self._revalidated.add(v)
            self.stats.witnesses_revalidated += 1
        if self._memo_valid(v, threshold):
            self.stats.cache_hits += 1
            return bool(self._check_result[v])
        if self.engine == "worklist":
            # A recorded cut separates v's copy from the rest of the
            # unrolled circuit structurally -- labels play no part in
            # the separation, only in the height bound.  If every cut
            # member's current height still fits under the (possibly
            # new) threshold, the same cut witnesses feasibility and
            # the expansion plus flow query can be skipped outright.
            cut = self._check_cut[v]
            if cut is not None:
                labels = self.labels
                phi = self.phi
                if all(
                    labels[u] - phi * w + 1 <= threshold for u, w in cut
                ):
                    # Re-anchor the memo on the witness itself: the
                    # verdict stays True exactly while every cut member
                    # keeps height <= threshold, and a member crossing
                    # its cap re-enqueues v through the cone index.
                    # The recorded expansion belongs to the old
                    # threshold, so it must not survive the re-anchor.
                    guard = {}
                    for u, w in cut:
                        cap = threshold + phi * w - 1
                        if guard.get(u, cap + 1) > cap:
                            guard[u] = cap
                    old_guard = self._check_guard[v]
                    if old_guard:
                        for u in old_guard:
                            self._cone_index[u].discard(v)
                    for u in guard:
                        self._cone_index[u].add(v)
                    self._check_guard[v] = guard
                    self._check_l[v] = threshold
                    self._check_result[v] = True
                    self._check_expansion[v] = None
                    self.stats.cache_hits += 1
                    return True
        # Speculative batch consume (vector kernel): a pending entry
        # prepped at the same threshold whose read labels have not
        # changed since prep answers the query with no expansion and no
        # flow work.  Entries are (threshold, expansion, read_set,
        # prep_stamp, cut); labels only rise, so an entry the prep-time
        # checks admitted stays the exact answer while its read set is
        # untouched — otherwise it is discarded and the scalar path
        # below recomputes from live labels.
        if self._batch:
            entry = self._batch.pop(v, None)
            if entry is not None and entry[0] == threshold:
                stamp = entry[3]
                change = self._change_stamp
                if all(change[u] <= stamp for u in entry[2]):
                    self.stats.flow_queries += 1
                    self.stats.batched_queries += 1
                    cut = entry[4]
                    self._record_query(v, threshold, entry[1], cut)
                    return cut is not None
        t0 = time.perf_counter()
        compiled = self.kernel != "object"
        if compiled:
            expansion = expand_partial_packed(
                self._cc,
                v,
                self.phi,
                self.labels,
                threshold,
                extra_depth=self.extra_depth,
                max_copies=self.max_copies,
                name_of=self.circuit.name_of,
            )
        else:
            expansion = expand_partial(
                self.circuit,
                v,
                self.phi,
                self.height_of,
                threshold,
                extra_depth=self.extra_depth,
                max_copies=self.max_copies,
            )
        t1 = time.perf_counter()
        self.stats.t_expand += t1 - t0
        self.stats.flow_queries += 1
        if compiled:
            packed_cut = cut_on_packed(
                expansion, self.k, arena=self._packed_arena
            )
            cut = (
                None
                if packed_cut is None
                else expansion.unpack_copies(packed_cut)
            )
            phases, arcs = self._packed_arena.drain_counters()
        else:
            cut = cut_on_expansion(expansion, self.k, arena=self._flow_arena)
            phases, arcs = self._flow_arena.drain_counters()
        self.stats.t_flow += time.perf_counter() - t1
        self.stats.dinic_phases += phases
        self.stats.arcs_advanced += arcs
        self._record_query(v, threshold, expansion, cut)
        return cut is not None

    def _record_query(
        self,
        v: int,
        threshold: int,
        expansion: "PartialExpansion | PackedExpansion",
        cut: Optional[List[Tuple[int, int]]],
    ) -> None:
        """Feed one answered cut query into the per-node memo.

        Shared by the scalar path and the batch consume, so both leave
        bit-identical memo state (guards, cone index, witness cuts,
        stamps) behind.
        """
        compiled = self.kernel != "object"
        # Both kernels feed the memo the same view: frontier copies as
        # (u, w) pairs.  Packed tiers decode lazily here — the frontier
        # is tiny next to the interior the hot loops just traversed.
        if compiled:
            candidates = expansion.unpack_copies(expansion.candidates)
            leaves = expansion.unpack_copies(expansion.leaves)
        else:
            candidates = expansion.candidates
            leaves = expansion.leaves
        if self.engine == "worklist":
            # Tier caps: a frontier copy u^w keeps its tier while
            # l(u) - phi*w + 1 stays at or below its bound, i.e. while
            # l(u) <= bound + phi*w - 1.  Interior copies only sink
            # deeper as labels rise and PI labels are fixed, so neither
            # constrains the memo; a blocked expansion stays blocked at
            # this threshold forever (empty guard).
            guard: dict = {}
            if not expansion.blocked:
                floor = threshold - self.extra_depth * self.phi
                for u, w in candidates:
                    cap = threshold + self.phi * w - 1
                    if guard.get(u, cap + 1) > cap:
                        guard[u] = cap
                if compiled:
                    kinds = self._cc.kinds
                    for u, w in leaves:
                        if kinds[u] == KIND_GATE:
                            cap = floor + self.phi * w - 1
                            if guard.get(u, cap + 1) > cap:
                                guard[u] = cap
                else:
                    kind = self.circuit.kind
                    for u, w in leaves:
                        if kind(u) is NodeKind.GATE:
                            cap = floor + self.phi * w - 1
                            if guard.get(u, cap + 1) > cap:
                                guard[u] = cap
            old_guard = self._check_guard[v]
            if old_guard:
                for u in old_guard:
                    self._cone_index[u].discard(v)
            for u in guard:
                self._cone_index[u].add(v)
            self._check_guard[v] = guard
            if cut is not None:
                self._check_cut[v] = cut
        else:
            cone_nodes = {v}
            if compiled:
                mask = self._cc.mask
                for p in expansion.interior:
                    cone_nodes.add(p & mask)
            else:
                for u, _w in expansion.interior:
                    cone_nodes.add(u)
            for u, _w in candidates:
                cone_nodes.add(u)
            for u, _w in leaves:
                cone_nodes.add(u)
            self._check_cone[v] = list(cone_nodes)
            self._check_stamp[v] = self._clock
        self._check_l[v] = threshold
        self._check_result[v] = cut is not None
        self._check_expansion[v] = expansion

    def expansion_for(
        self, v: int, threshold: int
    ) -> Optional["PartialExpansion | PackedExpansion"]:
        """The cached partial expansion of ``E_v`` at ``threshold``.

        The expansion type follows the solver's kernel — a
        :class:`~repro.kernel.expand.PackedExpansion` under
        ``kernel="compiled"`` — and
        :func:`repro.core.kcut.cut_on_expansion` accepts either.

        Valid only while ``_memo_valid`` can prove the recorded
        expansion still holds — structurally for the worklist engine
        (every guarded frontier member at or under its tier cap), by
        cone change-stamps for the rounds engine; returns ``None``
        otherwise.  The TurboSYN resynthesis hook uses this to skip the
        re-expansion its first (height ``L(v)``) min-cut query would
        otherwise repeat right after a failed K-cut check.
        """
        if self._memo_valid(v, threshold):
            return self._check_expansion[v]
        return None

    def _update(self, v: int) -> bool:
        """One label update; returns True when ``l(v)`` increased."""
        self.stats.updates += 1
        pins = self.circuit.fanins(v)
        if not pins:
            return False  # constant generators keep label 1
        big_l = max(self.labels[p.src] - self.phi * p.weight for p in pins)
        self._last_big_l[v] = big_l
        if big_l < self.labels[v]:
            return False  # cannot raise the label
        if self._has_kcut(v, big_l):
            new = big_l
            self._resyn_dep.discard(v)
        elif self.resyn_hook is not None:
            self.stats.resyn_calls += 1
            if self.resyn_hook(self, v, big_l):
                self.stats.resyn_wins += 1
                new = big_l
                self._resyn_dep.add(v)
            else:
                # big_l + 1 is protected by the big_l guard above until a
                # fanin rises, so no resynthesis dependency remains.
                new = big_l + 1
                self._resyn_dep.discard(v)
        else:
            new = big_l + 1
        if new > self.labels[v]:
            self.labels[v] = new
            if self._labels_arr is not None:
                self._labels_arr[v] = new
            self._clock += 1
            self._change_stamp[v] = self._clock
            return True
        return False

    # ------------------------------------------------------------------
    def _blocked_expansion(self, v: int, threshold: int) -> PackedExpansion:
        """The exact partial expansion of a depth-1 blocked query.

        When an arg-max fanin pin of ``v`` is driven by a PI, its copy
        height ``big_l + 1`` exceeds ``threshold = big_l`` and
        :func:`~repro.kernel.expand.expand_partial_packed` blocks while
        classifying the root's own pins — before expanding anything.
        This synthesizes that state without the traversal: pins before
        the first blocking one are classified (and their edges
        recorded), the blocking pin terminates the expansion with its
        edge unrecorded, exactly like the real traversal's early
        return.
        """
        cc = self._cc
        shift = cc.shift
        labels = self.labels
        phi = self.phi
        floor = threshold - self.extra_depth * phi
        result = PackedExpansion(root=v, shift=shift, blocked=True)
        result.interior.append(v)
        count = 1
        kinds = cc.kinds
        srcs = cc.srcs
        weights = cc.weights
        edges = result.edges
        for i in range(cc.offsets[v], cc.offsets[v + 1]):
            src = srcs[i]
            w = weights[i]
            height = labels[src] - phi * w + 1
            kind = kinds[src]
            if height > threshold:
                if kind == KIND_PI:
                    return result
                tier_list = result.interior
            elif kind == KIND_GATE and height > floor:
                tier_list = result.candidates
            else:
                tier_list = result.leaves
            count += 1
            if count > self.max_copies:
                raise ExpansionOverflow(
                    self.circuit.name_of(v), self.max_copies
                )
            tier_list.append((w << shift) | src)
            edges.append((w << shift) | src)
            edges.append(v)
        raise AssertionError("no blocking pin found")  # pragma: no cover

    def _prep_batch(self, gates: Sequence[int]) -> None:
        """Speculatively precompute a burst of cut queries (vector kernel).

        Pure with respect to solver state except for the pending-entry
        dict and the prefilter/flow counters: for every gate whose next
        ``_update`` would issue a flow query under *current* labels, the
        query is answered now — trivially via the vectorized height
        prefilter where possible, through one stacked
        :class:`~repro.kernel.batch.BatchCutArena` solve otherwise —
        and parked for ``_has_kcut`` to consume.  Entries record the
        labels they read; a label rise in between invalidates them at
        consume time (labels are monotone, so prep-time admission never
        over-commits), falling back to the scalar path.
        """
        arena = self._batch_arena
        self._batch.clear()
        if arena is None or len(gates) < 2:
            return
        labels = self.labels
        labels_arr = self._labels_arr
        phi = self.phi
        big_l_arr, has_pins, blocked_arr = batch_gate_profile(
            self._views, labels_arr, phi, gates, KIND_PI
        )
        # Gates whose update would actually query: pins exist, the fanin
        # maximum can raise the label, and the memo cannot answer.
        todo: List[Tuple[int, int, bool]] = []
        for i, v in enumerate(gates):
            if not has_pins[i]:
                continue
            big_l = int(big_l_arr[i])
            if big_l < labels[v]:
                continue
            if self._memo_valid(v, big_l):
                continue
            todo.append((v, big_l, bool(blocked_arr[i])))
        if not todo:
            return
        # Prefilter 1 — recorded witness cuts, checked as one stacked
        # height comparison: a passing witness means the consume-time
        # re-anchor in _has_kcut answers the query with no network.
        if self.engine == "worklist":
            wit_nodes: List[int] = []
            wit_weights: List[int] = []
            wit_qid: List[int] = []
            wit_thr: List[int] = []
            wit_pos: List[int] = []
            for j, (v, big_l, _blk) in enumerate(todo):
                cut = self._check_cut[v]
                if not cut:
                    continue
                qid = len(wit_thr)
                wit_thr.append(big_l)
                wit_pos.append(j)
                for u, w in cut:
                    wit_nodes.append(u)
                    wit_weights.append(w)
                    wit_qid.append(qid)
            if wit_thr:
                ok = witness_feasible(
                    labels_arr, phi, wit_nodes, wit_weights, wit_qid, wit_thr
                )
                hits = set()
                for qid, j in enumerate(wit_pos):
                    if ok[qid]:
                        hits.add(j)
                        self.stats.prefilter_hits += 1
                if hits:
                    todo = [t for j, t in enumerate(todo) if j not in hits]
        # Prefilter 2 — depth-1 blocked: an arg-max PI pin blocks the
        # expansion on the root's own pin list; synthesize that exact
        # partial expansion instead of traversing.  Everything else
        # expands for real and stacks into the batch arena.
        stamp = self._clock
        cc = self._cc
        mask = cc.mask
        kinds = cc.kinds
        t0 = time.perf_counter()
        stacked: List[Tuple[int, list]] = []
        for v, big_l, blk in todo:
            try:
                if blk:
                    expansion = self._blocked_expansion(v, big_l)
                    self.stats.prefilter_hits += 1
                else:
                    expansion = expand_partial_packed(
                        cc,
                        v,
                        phi,
                        labels,
                        big_l,
                        extra_depth=self.extra_depth,
                        max_copies=self.max_copies,
                        name_of=self.circuit.name_of,
                    )
            except ExpansionOverflow:
                # The scalar path raises the identical overflow at
                # consume time (same labels, same expansion) — let it
                # own the failure so batching never changes behavior.
                continue
            read = {v}
            for p in expansion.interior:
                read.add(p & mask)
            for p in expansion.candidates:
                read.add(p & mask)
            for p in expansion.leaves:
                u = p & mask
                if kinds[u] == KIND_GATE:
                    read.add(u)
            if expansion.blocked:
                self._batch[v] = (big_l, expansion, read, stamp, None)
            else:
                stacked.append((v, [big_l, expansion, read]))
        self.stats.t_expand += time.perf_counter() - t0
        if not stacked:
            return
        t1 = time.perf_counter()
        arena.reset()
        for _v, entry in stacked:
            arena.add(entry[1], self.k)
        cuts = arena.solve()
        phases, arcs = arena.drain_counters()
        self.stats.dinic_phases += phases
        self.stats.arcs_advanced += arcs
        self.stats.batch_rounds += 1
        self.stats.t_flow += time.perf_counter() - t1
        for (v, entry), packed_cut in zip(stacked, cuts):
            big_l, expansion, read = entry
            cut = (
                None
                if packed_cut is None
                else expansion.unpack_copies(packed_cut)
            )
            self._batch[v] = (big_l, expansion, read, stamp, cut)

    # ------------------------------------------------------------------
    def _grounded(self, members: List[int], member_set: Set[int]) -> bool:
        """PLD signal: is any SCC label still justified from outside?

        See :mod:`repro.core.pld` for the predecessor-graph construction.
        """
        self.stats.pld_checks += 1
        t0 = time.perf_counter()
        result = bool(
            grounded_members(self.circuit, self.labels, self.phi, members, member_set)
        )
        self.stats.t_pld += time.perf_counter() - t0
        return result

    # ------------------------------------------------------------------
    def _check_deadline(self) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise ProbeTimeout(
                f"{self.circuit.name}: label computation at phi={self.phi} "
                "exceeded its probe budget"
            )

    # ------------------------------------------------------------------
    def run(self) -> LabelOutcome:
        """Compute all labels or detect infeasibility (timed)."""
        t0 = time.perf_counter()
        try:
            return self._run()
        finally:
            self.stats.t_total += time.perf_counter() - t0

    def _run_scc_rounds(
        self,
        members: List[int],
        member_set: Set[int],
        max_rounds: int,
    ) -> bool:
        """Classical round-robin sweep; returns True when converged."""
        san = self._san
        isolated_streak = 0
        for _round in range(max_rounds):
            self._check_deadline()
            self._prep_batch(members)
            self.stats.rounds += 1
            before = None if san is None else san.snapshot(members)
            changed = False
            for v in members:
                if self._update(v):
                    changed = True
            if san is not None and before is not None:
                san.check_epoch(members, before)
            if not changed:
                return True
            if self.pld:
                if self._grounded(members, member_set):
                    isolated_streak = 0
                else:
                    isolated_streak += 1
                    if isolated_streak >= self.PLD_PATIENCE:
                        return False
        return False

    def _run_scc_worklist(
        self,
        members: List[int],
        member_set: Set[int],
        order_pos: "dict[int, int]",
        max_rounds: int,
    ) -> bool:
        """Event-driven worklist iteration; returns True when converged.

        Epochs mirror round-robin rounds: each epoch drains the gates
        made dirty by the previous one, in topological order, and a rise
        at position ``p`` cascades within the epoch to dependents at
        positions ``> p`` (exactly the gates a round-robin sweep would
        still visit this round) while dependents at positions ``<= p``
        wait for the next epoch.  After every changed epoch the PLD
        justification check runs, so the ``6n``-round accounting of the
        paper's Theorem 2 applies with epochs counted as rounds.

        Gates whose label currently rests on a resynthesis win are
        additionally re-enqueued after *every* in-SCC rise: the
        decomposition read labels beyond the recorded K-cut cone
        (deeper min-cut expansions, cut-input arrival times), so the
        cone index alone cannot prove them clean.
        """
        fanouts = self.circuit.fanouts
        cone_index = self._cone_index
        heap: List[Tuple[int, int]] = [(order_pos[v], v) for v in members]
        heapq.heapify(heap)
        in_current = set(members)
        next_set: Set[int] = set()
        san = self._san
        isolated_streak = 0
        for _epoch in range(max_rounds):
            self._check_deadline()
            if self._batch_arena is not None:
                self._prep_batch([v for _pos, v in sorted(heap)])
            self.stats.rounds += 1
            before = None if san is None else san.snapshot(members)
            changed = False
            while heap:
                pos_v, v = heapq.heappop(heap)
                in_current.discard(v)
                if not self._update(v):
                    continue
                changed = True
                for dep in cone_index[v]:
                    if dep not in member_set or dep in in_current:
                        continue
                    guard = self._check_guard[dep]
                    if guard is not None:
                        cap = guard.get(v)
                        if cap is not None and self.labels[v] <= cap:
                            # Still under the tier cap: the recorded
                            # expansion (and verdict) provably stands.
                            continue
                    if order_pos[dep] > pos_v:
                        in_current.add(dep)
                        heapq.heappush(heap, (order_pos[dep], dep))
                    else:
                        next_set.add(dep)
                for dst, w in fanouts(v):
                    if dst not in member_set or dst in in_current:
                        continue
                    contribution = self.labels[v] - self.phi * w
                    if (
                        contribution <= self._last_big_l[dst]
                        or contribution < self.labels[dst]
                    ):
                        # The rise cannot lift dst's fanin maximum past
                        # its already-justified label: the triggered
                        # update would early-return (big_l < l(dst)) or
                        # recompute the same big_l.  Any big_l at or
                        # above l(dst) is driven by a fanin whose own
                        # rise enqueues dst unfiltered; a memo-cone
                        # effect re-enqueues via the cone index above.
                        continue
                    if order_pos[dst] > pos_v:
                        in_current.add(dst)
                        heapq.heappush(heap, (order_pos[dst], dst))
                    else:
                        next_set.add(dst)
                for dep in list(self._resyn_dep):
                    if dep == v or dep not in member_set or dep in in_current:
                        continue
                    if order_pos[dep] > pos_v:
                        in_current.add(dep)
                        heapq.heappush(heap, (order_pos[dep], dep))
                    else:
                        next_set.add(dep)
            if san is not None and before is not None:
                san.check_epoch(members, before)
            if not changed:
                return True
            if self.pld:
                if self._grounded(members, member_set):
                    isolated_streak = 0
                else:
                    isolated_streak += 1
                    if isolated_streak >= self.PLD_PATIENCE:
                        return False
            if not next_set:
                return True  # every dependent already settled in-epoch
            heap = [(order_pos[v], v) for v in next_set]
            heapq.heapify(heap)
            in_current = next_set
            next_set = set()
        return False

    def _flush_singletons(self, pending: List[int]) -> None:
        """Update a buffered run of singleton (acyclic) SCCs in order.

        Consecutive singleton SCCs are collected by :meth:`_run` and
        prepped as one burst before any of them updates: on DAG-heavy
        circuits this is where most cut queries live, and independent
        gates of the run batch through one stacked solve (chained gates
        whose thresholds shift mid-run simply fail consume validation
        and fall back to the scalar path, preserving bit-identity).
        """
        if len(pending) > 1:
            self._prep_batch(pending)
        for v in pending:
            self.stats.rounds += 1
            if self._san is not None:
                before = self._san.snapshot([v])
                self._update(v)
                self._san.check_epoch([v], before)
            else:
                self._update(v)
        pending.clear()

    def _run(self) -> LabelOutcome:
        """Compute all labels or detect infeasibility."""
        order_pos = {nid: i for i, nid in enumerate(self.circuit.comb_topo_order())}
        pending_singletons: List[int] = []
        for component in self.circuit.sccs():
            self._check_deadline()
            members = [
                v for v in component if self.circuit.kind(v) is NodeKind.GATE
            ]
            if not members:
                continue
            if self._dirty is not None and not any(
                v in self._dirty for v in members
            ):
                # Wholly clean SCC: its transitive fanin is clean too
                # (dirty regions are forward-closed), so its members
                # already carry the exact fixpoint adopted from the
                # previous run — iterating (and PLD) would be a no-op.
                self.stats.sccs_skipped += 1
                continue
            members.sort(key=lambda nid: order_pos[nid])
            member_set = set(members)
            n_scc = len(members)
            self_looped = any(
                pin.src in member_set
                for v in members
                for pin in self.circuit.fanins(v)
            )
            if n_scc == 1 and not self_looped:
                pending_singletons.append(members[0])
                continue
            self._flush_singletons(pending_singletons)
            max_rounds = 6 * n_scc + self.PLD_PATIENCE if self.pld else n_scc * n_scc + 2
            rounds_before = self.stats.rounds
            if self.engine == "rounds":
                converged = self._run_scc_rounds(members, member_set, max_rounds)
            else:
                converged = self._run_scc_worklist(
                    members, member_set, order_pos, max_rounds
                )
            if self._san is not None:
                self._san.check_epoch_budget(
                    self.stats.rounds - rounds_before, max_rounds
                )
            if not converged:
                return LabelOutcome(
                    feasible=False,
                    labels=self.labels,
                    stats=self.stats,
                    failed_scc=members,
                )
        self._flush_singletons(pending_singletons)
        if self.io_constrained:
            # Retiming-only feasibility additionally requires every PO's
            # sequential arrival to fit one period: l(u) - phi*w <= phi
            # for the PO edge e(u, po) (Pan-Liu [19]).
            for po in self.circuit.pos:
                pin = self.circuit.fanins(po)[0]
                if self.labels[pin.src] - self.phi * pin.weight > self.phi:
                    return LabelOutcome(
                        feasible=False,
                        labels=self.labels,
                        stats=self.stats,
                        failed_scc=[po],
                    )
        if self._san is not None:
            self._san.check_converged()
        return LabelOutcome(feasible=True, labels=self.labels, stats=self.stats)
