"""FlowSYN-s: the sequential FlowSYN baseline of the paper's Table 1.

The paper compares TurboSYN against "FlowSYN-s", built from the purely
combinational FlowSYN [5]: *"It first partitions the sequential circuits
into a set of combinational subcircuits by cutting at all FFs, then maps
every subcircuit independently with the FlowSYN algorithm, and finally,
merges the mapped LUT circuits with the original FFs."*  Because the
partition freezes the register positions during mapping, loops are mapped
without the freedom of retiming — which is exactly the disadvantage
TurboSYN's Table 1 quantifies (1.72x higher clock periods on average).

Implementation: registered fanins become pseudo-PIs of the combinational
view, register drivers become pseudo-POs (forcing a mapped root), the view
is mapped with :func:`repro.comb.flowsyn.flowsyn`, and the registers are
re-attached as edge weights between the mapped roots.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.comb.flowsyn import flowsyn
from repro.core.driver import SeqMapResult
from repro.netlist.graph import NodeKind, SeqCircuit
from repro.netlist.validate import ensure_mappable
from repro.retime.mdr import min_feasible_period

_PSEUDO_PI = "{name}@@w{weight}"
_PSEUDO_PO = "{name}@@root"


def split_at_registers(circuit: SeqCircuit) -> SeqCircuit:
    """The combinational view: registered edges cut into pseudo-PIs/POs."""
    comb = SeqCircuit(f"{circuit.name}_comb")
    new_id: Dict[int, int] = {}
    pseudo_pi: Dict[Tuple[int, int], int] = {}
    register_drivers = sorted(
        {
            pin.src
            for v in circuit.node_ids()
            for pin in circuit.fanins(v)
            if pin.weight > 0
        }
    )

    def pseudo_input(src: int, weight: int) -> int:
        key = (src, weight)
        if key not in pseudo_pi:
            name = _PSEUDO_PI.format(name=circuit.name_of(src), weight=weight)
            pseudo_pi[key] = comb.add_pi(name)
        return pseudo_pi[key]

    for pi in circuit.pis:
        new_id[pi] = comb.add_pi(circuit.name_of(pi))
    for v in circuit.comb_topo_order():
        node = circuit.node(v)
        if node.kind is not NodeKind.GATE:
            continue
        pins = []
        for pin in node.fanins:
            if pin.weight > 0:
                pins.append((pseudo_input(pin.src, pin.weight), 0))
            else:
                pins.append((new_id[pin.src], 0))
        new_id[v] = comb.add_gate(node.name, node.func, pins)
    for po in circuit.pos:
        pin = circuit.fanins(po)[0]
        if pin.weight > 0:
            comb.add_po(circuit.name_of(po), pseudo_input(pin.src, pin.weight), 0)
        else:
            comb.add_po(circuit.name_of(po), new_id[pin.src], 0)
    for src in register_drivers:
        if circuit.kind(src) is NodeKind.GATE:
            comb.add_po(
                _PSEUDO_PO.format(name=circuit.name_of(src)), new_id[src], 0
            )
    comb.check()
    return comb


def merge_registers(
    circuit: SeqCircuit, mapped_comb: SeqCircuit, name: str
) -> SeqCircuit:
    """Re-attach the original registers to the mapped combinational view."""
    out = SeqCircuit(name)
    new_id: Dict[int, int] = {}
    # Pass 1: nodes (placeholders: register edges may point forward).
    for v in mapped_comb.node_ids():
        node = mapped_comb.node(v)
        if node.kind is NodeKind.PI:
            if "@@w" not in node.name:
                new_id[v] = out.add_pi(node.name)
        elif node.kind is NodeKind.GATE:
            new_id[v] = out.add_gate_placeholder(node.name, node.func)

    def resolve(mapped_node: int) -> Tuple[int, int]:
        """Mapped node -> (output node id, register count) in ``out``."""
        node = mapped_comb.node(mapped_node)
        if node.kind is NodeKind.PI and "@@w" in node.name:
            base, _sep, wtext = node.name.rpartition("@@w")
            # ``base`` is either an original PI (copied verbatim) or a
            # register-driving gate, whose mapped root kept the name.
            return out.id_of(base), int(wtext)
        return new_id[mapped_node], 0

    # Pass 2: wiring.
    for v in mapped_comb.node_ids():
        node = mapped_comb.node(v)
        if node.kind is NodeKind.GATE:
            pins = []
            for pin in node.fanins:
                src, weight = resolve(pin.src)
                pins.append((src, weight + pin.weight))
            out.set_fanins(new_id[v], pins)
        elif node.kind is NodeKind.PO and "@@root" not in node.name:
            pin = node.fanins[0]
            src, weight = resolve(pin.src)
            out.add_po(node.name, src, weight + pin.weight)
    out.check()
    return out


def flowsyn_s(
    circuit: SeqCircuit,
    k: int = 5,
    cmax: int = 15,
    name: Optional[str] = None,
    check: bool = True,
) -> SeqMapResult:
    """FlowSYN-s mapping; ``result.phi`` is the merged network's MDR bound.

    The reported clock period assumes the same retiming + pipelining
    post-processing as the other mappers (the paper's Table 1 compares
    "minimum clock periods (or MDR ratios) under retiming and
    pipelining").
    """
    ensure_mappable(circuit, k)
    comb = split_at_registers(circuit)
    mapped_view = flowsyn(comb, k=k, cmax=cmax).mapped
    merged = merge_registers(
        circuit, mapped_view, name or f"{circuit.name}_flowsyn_s"
    )
    phi = min_feasible_period(merged) if merged.n_gates else 1
    result = SeqMapResult(
        algorithm="flowsyn-s",
        phi=phi,
        mapped=merged,
        labels=[],
        outcomes={},
    )
    if check:
        from repro.core.driver import verify_result

        verify_result(circuit, result, k)
    return result
