"""Expanded circuits: all LUTs rooted at a node under retiming.

Pan-Liu [19] introduced the *expanded circuit* ``E_v`` to represent every
LUT that can be rooted at node ``v`` once retiming may move registers and
gates may be replicated: ``E_v`` is a DAG over *node copies* ``u^w``
("``u`` delayed by ``w`` registers") rooted at ``v^0``; for every circuit
edge ``e(x, u)`` the copy ``u^w`` has fanin ``x^(w + w(e))``.  Every path
from ``u^w`` to the root crosses exactly ``w`` registers, so a cut
``(X, X-bar)`` of ``E_v`` induces the *sequential* cone function
``f(u1^w1, ..., um^wm)`` of the paper's Figure 2, realizable as one LUT
whose input edges carry the cut weights.

TurboMap's efficiency [11] comes from never materializing ``E_v`` fully.
For a height test at threshold ``L``, copies with height
``l(u) - phi*w + 1 > L`` can never be LUT inputs, so they are *interior*
(collapsed into the sink and expanded through).  The paper's partial flow
network stops right there: the first copies at or below the threshold
become the candidate cut set.  This module additionally supports expanding
*through* candidate copies down to a configurable floor
(``extra_depth`` register wraps below the threshold): a candidate inside
the LUT cluster occasionally exposes a reconvergent deeper copy that cuts
cheaper.  ``extra_depth=0`` reproduces the paper's construction exactly;
the ablation benchmark measures what the extra generality buys.

Because every circuit cycle carries a register and ``phi >= 1``, heights
strictly drop along weight-accumulating reverse paths, so both expansions
terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.boolfn.truthtable import TruthTable, eval_gate_columns
from repro.netlist.graph import NodeKind, SeqCircuit

#: A copy of circuit node ``u`` delayed by ``w`` registers.
Copy = Tuple[int, int]

#: Default safety bound on the partial-expansion size; override per query
#: (or from :class:`repro.core.labels.LabelSolver` / the CLI
#: ``--max-copies`` flag) for unusually deep circuits.
DEFAULT_MAX_COPIES = 200_000


class ExpansionOverflow(RuntimeError):
    """A partial expansion exceeded its ``max_copies`` safety bound.

    Carries the offending root node's name and the limit that was hit so
    callers (and their error reports) can point at the node instead of a
    bare message.
    """

    def __init__(self, node_name: str, max_copies: int) -> None:
        super().__init__(
            f"expanded circuit for {node_name!r} exceeds {max_copies} "
            "copies; raise max_copies if the circuit is genuinely this deep"
        )
        self.node_name = node_name
        self.max_copies = max_copies


@dataclass
class PartialExpansion:
    """The partial expanded circuit for one height query.

    Attributes
    ----------
    root:
        The root copy ``(v, 0)``.
    interior:
        Copies that *must* be inside the LUT cluster (height above the
        threshold); includes the root.
    candidates:
        Copies that may be cut **or** absorbed into the cluster (height in
        ``(floor, threshold]``); empty in the paper's ``extra_depth=0``
        construction.
    leaves:
        Copies at or below the floor: candidate cut nodes fed straight
        from the flow source and not expanded further.
    edges:
        ``(child_copy, parent_copy)`` pairs oriented toward the root: for
        circuit edge ``e(x, u)`` and expanded copy ``u^w`` this contains
        ``((x, w + w(e)), (u, w))``.
    blocked:
        True when a PI copy sits above the threshold: no cut at this
        height exists (a PI cannot be replicated into the cluster).
    """

    root: Copy
    interior: List[Copy] = field(default_factory=list)
    candidates: List[Copy] = field(default_factory=list)
    leaves: List[Copy] = field(default_factory=list)
    edges: List[Tuple[Copy, Copy]] = field(default_factory=list)
    blocked: bool = False


def expand_partial(
    circuit: SeqCircuit,
    v: int,
    phi: int,
    height_of: Callable[[int, int], int],
    threshold: int,
    extra_depth: int = 0,
    max_copies: int = DEFAULT_MAX_COPIES,
) -> PartialExpansion:
    """Partial expansion of ``E_v`` for a cut-height query.

    ``height_of(u, w)`` returns the height contribution
    ``l(u) - phi*w + 1`` of copy ``u^w``.  Copies above ``threshold`` are
    interior; gate copies with height in ``(threshold - extra_depth*phi,
    threshold]`` are expandable candidates; everything at or below that
    floor (and every PI copy at or below the threshold) is a leaf.

    A gate with repeated identical fanin pins (the same driver wired to
    several inputs through the same register count) contributes one
    expansion edge per *distinct* pin, so the edge list never carries
    duplicate ``(child, parent)`` pairs — duplicates would become
    redundant parallel unit edges in the downstream flow network.

    Raises :class:`ExpansionOverflow` when the expansion exceeds
    ``max_copies`` copies.
    """
    if circuit.kind(v) is not NodeKind.GATE:
        raise ValueError("expanded circuits are rooted at gates")
    floor = threshold - extra_depth * phi
    result = PartialExpansion(root=(v, 0))
    seen: Dict[Copy, str] = {}  # copy -> tier
    stack: List[Copy] = [(v, 0)]
    seen[(v, 0)] = "interior"
    result.interior.append((v, 0))
    count = 1
    fanin_pairs = circuit.fanin_pairs()
    kinds = circuit.kind_list()
    dedup: Dict[int, List[Tuple[int, int]]] = {}
    while stack:
        u, w = stack.pop()
        pins = dedup.get(u)
        if pins is None:
            raw = fanin_pairs[u]
            pins = list(dict.fromkeys(raw)) if len(raw) > 1 else raw
            dedup[u] = pins
        for src, pin_w in pins:
            child: Copy = (src, w + pin_w)
            tier = seen.get(child)
            if tier is None:
                height = height_of(src, child[1])
                kind = kinds[src]
                if height > threshold:
                    if kind is NodeKind.PI:
                        result.blocked = True
                        return result
                    tier = "interior"
                elif kind is NodeKind.GATE and height > floor:
                    tier = "candidate"
                else:
                    tier = "leaf"
                count += 1
                if count > max_copies:
                    raise ExpansionOverflow(circuit.name_of(v), max_copies)
                seen[child] = tier
                if tier == "interior":
                    result.interior.append(child)
                    stack.append(child)
                elif tier == "candidate":
                    result.candidates.append(child)
                    stack.append(child)
                else:
                    result.leaves.append(child)
            result.edges.append((child, (u, w)))
    return result


def sequential_cone_function(
    circuit: SeqCircuit,
    root: int,
    cut: Sequence[Copy],
    max_copies: int = DEFAULT_MAX_COPIES,
) -> TruthTable:
    """Exact function of ``root^0`` over the ordered cut copies.

    The cut copies ``u^w`` act as free variables (variable ``i`` is
    ``cut[i]``); copies between the cut and the root are evaluated through
    their gate functions.  Raises when the cut does not cover the
    expansion (a PI or an unbounded regress is reached).

    The cone lies inside the partial expansion that produced ``cut``, so
    its copy count is bounded by the same ``max_copies`` the expansion
    ran under; exceeding it means the cut fails to cover the cone (an
    unbounded regress) and raises :class:`ExpansionOverflow`.
    """
    cut = list(cut)
    m = len(cut)
    if m > 20:
        raise ValueError(f"cut of {m} copies is too wide for dense evaluation")
    values: Dict[Copy, int] = {}
    for i, copy in enumerate(cut):
        values[copy] = TruthTable.var(i, m).bits

    order: List[Copy] = []
    state: Dict[Copy, int] = {}
    stack: List[Tuple[Copy, bool]] = [((root, 0), False)]
    guard = 0
    while stack:
        copy, processed = stack.pop()
        if processed:
            state[copy] = 1
            order.append(copy)
            continue
        if state.get(copy) == 1 or copy in values:
            continue
        state[copy] = 0
        stack.append((copy, True))
        u, w = copy
        if circuit.kind(u) is not NodeKind.GATE:
            raise ValueError(
                f"cut does not cover copy ({circuit.name_of(u)}, {w})"
            )
        guard += 1
        if guard > max_copies:
            raise ExpansionOverflow(circuit.name_of(root), max_copies)
        for pin in circuit.fanins(u):
            child = (pin.src, w + pin.weight)
            if child in values or state.get(child) == 1:
                continue
            stack.append((child, False))

    for copy in order:
        u, w = copy
        node = circuit.node(u)
        cols = [
            values[(pin.src, w + pin.weight)] for pin in node.fanins
        ]
        values[copy] = eval_gate_columns(node.func, cols, m)
    return TruthTable(m, values[(root, 0)])
