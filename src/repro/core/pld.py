"""Positive loop detection through predecessor (justification) graphs.

The paper's second contribution (Section 4): when the target clock period
``phi`` is infeasible, some SCC contains a *positive loop* — a cycle with
``d(C) > phi * w(C)`` in every possible mapping — and the label lower
bounds of its nodes grow forever.  The conservative stopping rule of [21]
runs ``n^2`` update rounds before giving up; TurboSYN instead watches the
**predecessor graph**: after each round, node ``v`` (with ``l(v) > 1``)
is *justified* by the fanins ``u`` with ``l(u) - phi*w(e) + 1 >= l(v)``.
A label that is transitively justified from outside the SCC (a PI or an
already-converged upstream node) is *grounded*; once no label in the SCC
is grounded, the labels feed only on themselves and the SCC is caught in
a positive loop.  Combined with the ``6n``-round bound of the paper's
Theorem 2 this detects infeasibility in linear instead of quadratic
rounds — the 10-50x label-computation speedup reported in the paper and
measured by ``benchmarks/bench_pld.py``.

The solver applies a small persistence window
(:attr:`repro.core.labels.LabelSolver.PLD_PATIENCE`) before trusting an
isolation verdict: a zero-gain critical cycle can look isolated on the
single round where its labels settle, while a genuine positive loop stays
isolated on every subsequent round.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.netlist.graph import SeqCircuit


def justified_predecessors(
    circuit: SeqCircuit, labels: Sequence[int], phi: int, v: int
) -> List[int]:
    """The predecessor set ``pi[v]`` of the paper (empty when ``l(v)<=1``)."""
    lv = labels[v]
    if lv <= 1:
        return []
    return [
        pin.src
        for pin in circuit.fanins(v)
        if labels[pin.src] - phi * pin.weight + 1 >= lv
    ]


def grounded_members(
    circuit: SeqCircuit,
    labels: Sequence[int],
    phi: int,
    members: Sequence[int],
    member_set: Set[int],
) -> Set[int]:
    """SCC members whose labels are justified from outside the SCC.

    Seeds are members with ``l(v) <= 1`` (trivially supported) or with a
    justifying predecessor outside the SCC; justification edges inside the
    SCC propagate groundedness forward.  An empty result means the SCC is
    "totally isolated from the PIs" in the predecessor graph — the PLD
    infeasibility signal.
    """
    grounded: Set[int] = set()
    fwd: Dict[int, List[int]] = {v: [] for v in members}
    queue: List[int] = []
    for v in members:
        lv = labels[v]
        if lv <= 1:
            grounded.add(v)
            queue.append(v)
            continue
        for u in justified_predecessors(circuit, labels, phi, v):
            if u in member_set:
                fwd[u].append(v)
            elif v not in grounded:
                grounded.add(v)
                queue.append(v)
    while queue:
        u = queue.pop()
        for v in fwd.get(u, ()):
            if v not in grounded:
                grounded.add(v)
                queue.append(v)
    return grounded
