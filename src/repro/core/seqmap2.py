"""SeqMapII-style label computation (Pan-Liu [19, 21]) — the slow baseline.

SeqMapII introduced the optimal-clock-period formulation TurboMap builds
on; its practical weakness is the iteration schedule: labels of *all*
nodes are updated in global rounds until a fixpoint, with the
conservative ``n^2``-round stopping rule for infeasible targets and no
reuse of flow queries between rounds.  TurboMap [11] reported a ~2x10^4
speedup from the partial flow networks, the SCC-topological schedule and
(in this paper) positive loop detection.

This module reproduces the *schedule* regressions faithfully on top of
the same cut oracle:

* one global round updates every gate (no SCC decomposition, so upstream
  labels keep invalidating downstream work);
* no memoization — every update pays a fresh expansion + max-flow;
* termination only by global fixpoint or the ``n^2`` round bound.

``benchmarks/bench_seqmap2.py`` quantifies what TurboMap's engineering
buys at equal answers (both decide feasibility identically).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.expanded import expand_partial
from repro.core.kcut import cut_on_expansion
from repro.core.labels import LabelOutcome, LabelStats
from repro.netlist.graph import SeqCircuit
from repro.netlist.validate import ensure_mappable
from repro.retime.mdr import min_feasible_period


class SeqMap2Solver:
    """Global-round label computation with the ``n^2`` stopping rule."""

    def __init__(self, circuit: SeqCircuit, k: int, phi: int) -> None:
        if phi < 1:
            raise ValueError("target clock period must be at least 1")
        self.circuit = circuit
        self.k = k
        self.phi = phi
        self.stats = LabelStats()
        self.labels: List[int] = [0] * len(circuit)
        for g in circuit.gates:
            self.labels[g] = 1

    def _height_of(self, u: int, w: int) -> int:
        return self.labels[u] - self.phi * w + 1

    def _update(self, v: int) -> bool:
        self.stats.updates += 1
        pins = self.circuit.fanins(v)
        if not pins:
            return False
        big_l = max(self.labels[p.src] - self.phi * p.weight for p in pins)
        if big_l < self.labels[v]:
            return False
        expansion = expand_partial(
            self.circuit, v, self.phi, self._height_of, big_l
        )
        self.stats.flow_queries += 1
        cut = cut_on_expansion(expansion, self.k)
        new = big_l if cut is not None else big_l + 1
        if new > self.labels[v]:
            self.labels[v] = new
            return True
        return False

    def run(self, max_rounds: Optional[int] = None) -> LabelOutcome:
        gates = self.circuit.gates
        n = max(1, len(gates))
        rounds = max_rounds if max_rounds is not None else n * n + 2
        for _round in range(rounds):
            self.stats.rounds += 1
            changed = False
            for v in gates:
                if self._update(v):
                    changed = True
            if not changed:
                return LabelOutcome(
                    feasible=True, labels=self.labels, stats=self.stats
                )
        return LabelOutcome(
            feasible=False,
            labels=self.labels,
            stats=self.stats,
            failed_scc=list(gates),
        )


@dataclass
class SeqMap2Result:
    phi: int
    labels: List[int]
    stats: LabelStats


def seqmap2_min_phi(
    circuit: SeqCircuit, k: int, upper_bound: Optional[int] = None
) -> SeqMap2Result:
    """Binary search the minimum feasible period with the slow schedule.

    Decision-equivalent to TurboMap (same cut oracle); only the cost
    differs.  Intended for the comparison benchmark on small circuits —
    the ``n^2`` rule makes infeasible probes quadratic.
    """
    ensure_mappable(circuit, k)
    ub = upper_bound if upper_bound is not None else min_feasible_period(circuit)
    total = LabelStats()
    best_labels: Optional[List[int]] = None

    def probe(phi: int) -> Optional[List[int]]:
        outcome = SeqMap2Solver(circuit, k, phi).run()
        total.rounds += outcome.stats.rounds
        total.updates += outcome.stats.updates
        total.flow_queries += outcome.stats.flow_queries
        return outcome.labels if outcome.feasible else None

    lo, hi = 1, max(1, ub)
    labels_hi = probe(hi)
    while labels_hi is None:  # pragma: no cover - ub is always feasible
        hi *= 2
        labels_hi = probe(hi)
    best_labels = labels_hi
    best_phi = hi
    while lo < hi:
        mid = (lo + hi) // 2
        labels = probe(mid)
        if labels is not None:
            hi = mid
            best_phi = mid
            best_labels = labels
        else:
            lo = mid + 1
    return SeqMap2Result(phi=best_phi, labels=best_labels, stats=total)
