"""Persistent warm-start cache: probe outcomes shared across runs.

Feasibility at a given ``phi`` is a property of ``(circuit, K,
options)`` alone, so the Figure-4 binary search's probe outcomes are
reusable across CLI invocations, ``repro remap`` calls and
:mod:`repro.serve` jobs — this package stores them durably,
content-addressed by the circuit's canonical-BLIF SHA-256 (the ROADMAP
"warm caches of ``(circuit, K, phi)`` outcomes shared across users"
item).

* :class:`~repro.cache.store.OutcomeCache` — the store: sharded JSON
  entries, packed-int32 labels, checksums, atomic writes, LRU size
  bound, one cross-process file lock.
* :func:`~repro.cache.store.cache_key` — the invalidation key
  (engine/flow/kernel backends are deliberately excluded: the
  engine-matrix tests pin them bit-identical).
* :mod:`repro.analysis.cacherules` — the CACHE001-003 integrity pack.
* ``python -m repro.cache`` — ``stats`` / ``clear`` / ``audit`` /
  ``warmcheck`` maintenance CLI (also mounted as ``turbosyn cache``).

Consumers: :func:`repro.core.driver.search_min_phi` (verdict adoption,
warm seeds, verified search floor), :func:`repro.core.driver.run_mapper`
(exact-hit replay, re-verified before trust), the parallel search, the
mapping service (outcomes sidecar + ``cache-hit`` journal notes) and
``repro remap`` (cached base fixpoint when no in-process previous
result exists).
"""

from repro.cache.store import (
    CACHE_SCHEMA,
    CacheKey,
    DEFAULT_MAX_BYTES,
    OutcomeCache,
    cache_key,
    circuit_content_id,
    final_signature,
)

__all__ = [
    "CACHE_SCHEMA",
    "CacheKey",
    "DEFAULT_MAX_BYTES",
    "OutcomeCache",
    "cache_key",
    "circuit_content_id",
    "final_signature",
]
