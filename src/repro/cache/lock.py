"""Advisory inter-process file lock guarding cache read-modify-writes.

Concurrent CLI runs and a long-lived :mod:`repro.serve` instance may
share one cache directory; every mutation (entry merge, eviction,
clear) happens under one exclusive ``flock`` on ``<root>/.lock`` so two
writers merging outcomes into the same entry serialize instead of
losing updates.  Reads go lock-free: entries are written atomically
(:func:`repro.resilience.atomic.atomic_write_text`), so a reader sees
either the old or the new complete file, never a torn one.

On platforms without ``fcntl`` the lock degrades to a thread lock —
in-process safety stays, cross-process safety is best-effort (the
atomic entry writes still prevent corruption; concurrent merges may
lose a probe, which only costs a re-probe later).
"""

from __future__ import annotations

import os
import threading

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl

    HAVE_FCNTL = True
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]
    HAVE_FCNTL = False


class FileLock:
    """``with FileLock(path):`` — exclusive advisory lock on ``path``.

    Reentrant within a process is *not* supported (and not needed: the
    cache never nests mutations); a second ``__enter__`` from another
    thread blocks on the internal thread lock first, so a single
    process never competes with itself for the flock.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._thread_lock = threading.Lock()
        self._fd: int = -1

    def __enter__(self) -> "FileLock":
        self._thread_lock.acquire()
        try:
            self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            if HAVE_FCNTL:
                fcntl.flock(self._fd, fcntl.LOCK_EX)
        except Exception:
            if self._fd >= 0:
                os.close(self._fd)
                self._fd = -1
            self._thread_lock.release()
            raise
        return self

    def __exit__(self, *exc_info: object) -> None:
        try:
            if self._fd >= 0:
                if HAVE_FCNTL:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
                os.close(self._fd)
                self._fd = -1
        finally:
            self._thread_lock.release()
