"""Maintenance CLI of the persistent outcome cache.

``python -m repro.cache <command>`` (also mounted as ``turbosyn
cache``):

* ``stats DIR``    — entry count, byte size, and counter snapshot;
* ``clear DIR``    — delete every entry (the directory survives);
* ``audit DIR``    — run the CACHE001-003 integrity pack and render
  its findings; exit 1 on any ERROR;
* ``warmcheck FIRST SECOND`` — compare a cold suite report against a
  warm re-run of the same suite: the second pass must report cache
  hits, strictly fewer flow queries, and bit-identical phi per run
  (the CI cache-smoke contract).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.cache.store import OutcomeCache


def _cmd_stats(args: argparse.Namespace) -> int:
    cache = OutcomeCache(args.dir)
    print(json.dumps(cache.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_clear(args: argparse.Namespace) -> int:
    removed = OutcomeCache(args.dir).clear()
    print(f"cleared {removed} cache entries from {args.dir}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis.cacherules import audit_cache
    from repro.analysis.engine import Severity

    diags = audit_cache(args.dir, select=args.select)
    for diag in diags:
        print(diag.render())
    errors = sum(1 for d in diags if d.severity is Severity.ERROR)
    print(
        f"cache audit: {len(diags)} findings ({errors} errors) "
        f"in {args.dir}"
    )
    return 1 if errors else 0


def warm_run_deltas(
    first: dict, second: dict
) -> Tuple[List[str], List[str]]:
    """Compare a cold report against its warm re-run.

    Returns ``(problems, lines)``: hard contract violations, and a
    per-run summary table.  The contract: the warm pass serves cached
    outcomes (``outcome_cache_hits > 0`` summed over runs), performs
    strictly fewer max-flow queries than the cold pass, and reproduces
    every phi bit-identically.
    """
    problems: List[str] = []
    lines: List[str] = []

    def index(report: dict) -> dict:
        return {
            (run["circuit"], run["algorithm"], run.get("workers", 1)): run
            for run in report["runs"]
        }

    cold, warm = index(first), index(second)
    if set(cold) != set(warm):
        problems.append(
            f"run sets differ: cold has {sorted(set(cold) - set(warm))} "
            f"extra, warm has {sorted(set(warm) - set(cold))} extra"
        )
    total_hits = 0
    total_cold_flow = total_warm_flow = 0
    for run_key in sorted(set(cold) & set(warm)):
        crun, wrun = cold[run_key], warm[run_key]
        if crun["phi"] != wrun["phi"]:
            problems.append(
                f"{run_key}: phi drifted {crun['phi']} -> {wrun['phi']}"
            )
        hits = int(wrun["stats"].get("outcome_cache_hits", 0))
        cold_flow = int(crun["stats"].get("flow_queries", 0))
        warm_flow = int(wrun["stats"].get("flow_queries", 0))
        total_hits += hits
        total_cold_flow += cold_flow
        total_warm_flow += warm_flow
        lines.append(
            f"{run_key[0]:<12} {run_key[1]:<9} phi={crun['phi']:<4} "
            f"flow {cold_flow:>6} -> {warm_flow:<6} hits={hits} "
            f"seconds {crun['seconds']:.3f} -> {wrun['seconds']:.3f}"
        )
    if total_hits <= 0:
        problems.append("warm pass reported no outcome_cache_hits")
    if total_warm_flow >= total_cold_flow:
        problems.append(
            f"warm pass did not reduce flow queries "
            f"({total_cold_flow} -> {total_warm_flow})"
        )
    lines.append(
        f"TOTAL flow {total_cold_flow} -> {total_warm_flow}, "
        f"cache hits {total_hits}"
    )
    return problems, lines


def _cmd_warmcheck(args: argparse.Namespace) -> int:
    from repro.perf.report import load_report

    problems, lines = warm_run_deltas(
        load_report(args.first), load_report(args.second)
    )
    for line in lines:
        print(line)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("warmcheck OK: cached outcomes served, phi bit-identical")
    return 1 if problems else 0


def build_parser(prog: str = "repro.cache") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog, description="outcome-cache maintenance"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="entry/byte/counter snapshot")
    p_stats.add_argument("dir", help="cache directory")
    p_stats.set_defaults(func=_cmd_stats)

    p_clear = sub.add_parser("clear", help="delete every cache entry")
    p_clear.add_argument("dir", help="cache directory")
    p_clear.set_defaults(func=_cmd_clear)

    p_audit = sub.add_parser(
        "audit", help="run the CACHE001-003 integrity pack"
    )
    p_audit.add_argument("dir", help="cache directory")
    p_audit.add_argument(
        "--select",
        nargs="*",
        default=None,
        help="restrict to specific rule ids (default: all)",
    )
    p_audit.set_defaults(func=_cmd_audit)

    p_warm = sub.add_parser(
        "warmcheck",
        help="assert a warm suite re-run saved work and kept phi",
    )
    p_warm.add_argument("first", help="cold-pass suite report (JSON)")
    p_warm.add_argument("second", help="warm-pass suite report (JSON)")
    p_warm.set_defaults(func=_cmd_warmcheck)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
