"""Persistent content-addressed store of phi-probe outcomes.

The paper's Figure-4 search is a sequence of monotone feasibility
probes, so a probe's verdict is a durable fact about ``(circuit, K,
options, phi)`` — not about the run that computed it.  This store keys
every outcome by the SHA-256 of the circuit's canonical BLIF (the same
address :class:`repro.serve.store.CircuitStore` uses) plus the
engine-*relevant* options, and records per-phi verdict + converged
labels (packed int32, base64) plus the final ``(min phi, result
signature, certificates)`` of a completed verified search.

Deliberately **excluded** from the key: ``engine``, ``flow``,
``kernel``, ``warm_start`` and worker count — the engine-matrix tests
assert all of them bit-identical on phi and labels, so outcomes cached
under one backend are valid under every other.  ``cmax`` participates
only when resynthesis is on (TurboMap ignores it).

Durability hygiene follows the PR 8 store: atomic entry writes with
dirsync, a versioned schema where a mismatched version is *ignored*
(future or past code can keep its own entries) while a corrupted or
truncated entry is *healed* (quarantined to a miss and deleted, counted
in ``healed``), an embedded whole-entry checksum so silent bit-rot
cannot masquerade as a verdict, bounded total size with LRU eviction
(entries are re-touched on every hit), and one advisory file lock
(:class:`repro.cache.lock.FileLock`) serializing read-modify-writes
across processes.

Nothing read from this store is trusted blind by callers: the driver
re-verifies exact hits through the default-on MAP/RET verifier and the
stored result signature, and falls back to a cold search (healing the
entry) on any disagreement — see :func:`repro.core.driver.run_mapper`.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cache.lock import FileLock
from repro.core.expanded import DEFAULT_MAX_COPIES
from repro.core.labels import LabelOutcome, LabelStats
from repro.kernel.share import pack_labels, unpack_labels
from repro.netlist.blif import write_blif
from repro.netlist.graph import SeqCircuit
from repro.resilience.atomic import atomic_write_text

#: Entry schema version.  Bump on layout changes; mismatched entries
#: are ignored (treated as misses), never deleted.
CACHE_SCHEMA = 1

#: Default size bound of one cache directory (LRU-evicted above this).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class CacheKey:
    """The invalidation key: circuit content + engine-relevant options.

    ``n`` (the node count) is not an input of the search — it is
    recorded so packed label blobs can be length-validated on load
    (CACHE002) without recompiling the circuit.
    """

    circuit_id: str
    n: int
    k: int
    resynthesize: bool
    cmax: Optional[int]
    pld: bool
    extra_depth: int
    io_constrained: bool
    max_copies: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit_id,
            "n": self.n,
            "k": self.k,
            "resynthesize": self.resynthesize,
            "cmax": self.cmax,
            "pld": self.pld,
            "extra_depth": self.extra_depth,
            "io_constrained": self.io_constrained,
            "max_copies": self.max_copies,
        }

    @property
    def config_id(self) -> str:
        """SHA-256 of the canonical key JSON (the entry's file name)."""
        return hashlib.sha256(
            _canonical_json(self.to_dict()).encode("utf-8")
        ).hexdigest()


def circuit_content_id(circuit: SeqCircuit) -> str:
    """The content address: SHA-256 hex of the canonical BLIF text."""
    return hashlib.sha256(write_blif(circuit).encode("utf-8")).hexdigest()


def cache_key(
    circuit: SeqCircuit,
    k: int,
    resynthesize: bool,
    cmax: Optional[int] = None,
    pld: bool = True,
    extra_depth: int = 0,
    io_constrained: bool = False,
    max_copies: int = DEFAULT_MAX_COPIES,
    circuit_id: Optional[str] = None,
) -> CacheKey:
    """Build the cache key for one search configuration.

    ``circuit_id`` lets a caller that already holds the content address
    (e.g. the mapping service's circuit store) skip re-serializing the
    netlist.  ``cmax`` is normalized to ``None`` when resynthesis is
    off — TurboMap runs never consult it, so keying on it would only
    split identical result sets.
    """
    return CacheKey(
        circuit_id=(
            circuit_id if circuit_id is not None
            else circuit_content_id(circuit)
        ),
        n=len(circuit),
        k=k,
        resynthesize=bool(resynthesize),
        cmax=(int(cmax) if resynthesize and cmax is not None else None),
        pld=bool(pld),
        extra_depth=int(extra_depth),
        io_constrained=bool(io_constrained),
        max_copies=int(max_copies),
    )


def final_signature(phi: int, labels: List[int], mapped_blif: str) -> str:
    """Deterministic signature of a finished mapping result.

    Covers the optimum period, the converged labels and the canonical
    mapped netlist — everything an exact cache hit must reproduce
    bit-identically.  Compared on every exact-hit replay; a mismatch
    heals the entry and falls back to a cold search.
    """
    digest = hashlib.sha256()
    digest.update(str(int(phi)).encode("ascii"))
    digest.update(b"\0")
    digest.update(pack_labels(labels) or b"")
    digest.update(b"\0")
    digest.update(mapped_blif.encode("utf-8"))
    return digest.hexdigest()


def _canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def entry_checksum(entry: Dict[str, Any]) -> str:
    """Whole-entry integrity checksum (over everything but itself)."""
    body = {k: v for k, v in entry.items() if k != "checksum"}
    return hashlib.sha256(
        _canonical_json(body).encode("utf-8")
    ).hexdigest()


def encode_labels(labels: List[int]) -> str:
    return base64.b64encode(pack_labels(labels) or b"").decode("ascii")


def decode_labels(blob: str) -> List[int]:
    raw = base64.b64decode(blob.encode("ascii"), validate=True)
    if len(raw) % 4:
        raise ValueError(f"packed labels not int32-aligned ({len(raw)}B)")
    return unpack_labels(raw) or []


class OutcomeCache:
    """On-disk probe/outcome cache shared by CLI runs and the service."""

    def __init__(
        self, root: str, max_bytes: int = DEFAULT_MAX_BYTES
    ) -> None:
        self.root = os.fspath(root)
        self.max_bytes = int(max_bytes)
        os.makedirs(os.path.join(self.root, "entries"), exist_ok=True)
        self._lock = FileLock(os.path.join(self.root, ".lock"))
        #: in-run memo of loaded entries (path -> entry dict or None);
        #: invalidated by this process's own writes.  Staleness against
        #: a concurrent writer only costs a miss, never a wrong answer.
        self._mem: Dict[str, Optional[Dict[str, Any]]] = {}
        # -- observability counters ------------------------------------
        self.hits = 0  #: per-phi outcomes served
        self.misses = 0  #: per-phi lookups that found nothing
        self.seeds = 0  #: warm seeds served to uncached probes
        self.final_hits = 0  #: exact full-search hits served
        self.puts = 0  #: outcomes written through
        self.healed = 0  #: corrupted entries quarantined
        self.ignored = 0  #: entries skipped on schema-version mismatch
        self.evictions = 0  #: entries dropped by the LRU size bound

    # -- paths ----------------------------------------------------------
    def _entry_path(self, key: CacheKey) -> str:
        shard = key.circuit_id[:2] or "00"
        name = f"{key.circuit_id}-{key.config_id}.json"
        return os.path.join(self.root, "entries", shard, name)

    def _entry_files(self) -> List[str]:
        out: List[str] = []
        entries_root = os.path.join(self.root, "entries")
        for dirpath, _dirnames, filenames in os.walk(entries_root):
            for name in filenames:
                if name.endswith(".json"):
                    out.append(os.path.join(dirpath, name))
        return out

    # -- entry IO -------------------------------------------------------
    def _heal(self, path: str, why: str) -> None:
        """Quarantine a corrupted entry: delete it, count the heal."""
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - already gone / racing heal
            pass
        self.healed += 1
        self._mem[path] = None

    def _load(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        """Read + validate one entry; corrupt entries heal to a miss."""
        path = self._entry_path(key)
        if path in self._mem:
            return self._mem[path]
        entry = self._read_validated(path, key)
        self._mem[path] = entry
        return entry

    def _read_validated(
        self, path: str, key: Optional[CacheKey]
    ) -> Optional[Dict[str, Any]]:
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            return None
        try:
            entry = json.loads(text)
        except ValueError:
            self._heal(path, "not JSON")
            return None
        if not isinstance(entry, dict):
            self._heal(path, "not an object")
            return None
        if entry.get("schema") != CACHE_SCHEMA:
            # A different (older/newer) writer owns this entry; leave
            # it alone and act as a cold cache.
            self.ignored += 1
            return None
        if entry.get("checksum") != entry_checksum(entry):
            self._heal(path, "checksum mismatch")
            return None
        if key is not None and entry.get("key") != key.to_dict():
            # Hash collision or tampering: the addressed key must
            # round-trip exactly.
            self._heal(path, "key mismatch")
            return None
        try:
            self._validate_payload(entry, key)
        except (ValueError, TypeError, KeyError, binascii.Error) as exc:
            self._heal(path, f"payload invalid: {exc}")
            return None
        return entry

    @staticmethod
    def _validate_payload(
        entry: Dict[str, Any], key: Optional[CacheKey]
    ) -> None:
        """Structural validation beyond the checksum (defense in depth)."""
        n = int(entry["key"]["n"])
        phis = entry.get("phis")
        if not isinstance(phis, dict):
            raise ValueError("phis is not an object")
        for phi_text, record in phis.items():
            phi = int(phi_text)
            if phi < 1:
                raise ValueError(f"phi {phi} out of range")
            labels = decode_labels(record["labels"])
            if len(labels) != n:
                raise ValueError(
                    f"phi {phi}: {len(labels)} labels for n={n}"
                )
            bool(record["feasible"])
        final = entry.get("final")
        if final is not None:
            if int(final["phi"]) < 1:
                raise ValueError("final phi out of range")
            str(final["signature"])

    def _store(self, path: str, entry: Dict[str, Any]) -> None:
        entry["checksum"] = entry_checksum(entry)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_text(path, _canonical_json(entry))
        self._mem[path] = entry

    def _fresh_entry(self, key: CacheKey) -> Dict[str, Any]:
        return {
            "schema": CACHE_SCHEMA,
            "key": key.to_dict(),
            "phis": {},
            "final": None,
        }

    # -- per-phi outcomes ----------------------------------------------
    def get_outcome(self, key: CacheKey, phi: int) -> Optional[LabelOutcome]:
        """A cached probe verdict at ``phi``, reconstructed as a
        :class:`LabelOutcome` with *fresh* (empty) stats so adopted
        outcomes never replay the solver counters of the run that
        produced them — telemetry stays honest about saved work."""
        entry = self._load(key)
        record = (
            entry["phis"].get(str(int(phi))) if entry is not None else None
        )
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        self._touch(self._entry_path(key))
        return LabelOutcome(
            feasible=bool(record["feasible"]),
            labels=decode_labels(record["labels"]),
            stats=LabelStats(),
            failed_scc=[int(v) for v in record.get("failed_scc", [])],
        )

    def put_outcome(
        self, key: CacheKey, phi: int, outcome: LabelOutcome
    ) -> None:
        """Write one probe verdict through (merge under the file lock)."""
        path = self._entry_path(key)
        record = {
            "feasible": bool(outcome.feasible),
            "labels": encode_labels(outcome.labels),
        }
        if outcome.failed_scc:
            record["failed_scc"] = [int(v) for v in outcome.failed_scc]
        with self._lock:
            self._mem.pop(path, None)  # merge against the disk truth
            entry = self._read_validated(path, key)
            if entry is None:
                entry = self._fresh_entry(key)
            entry["phis"][str(int(phi))] = record
            self._store(path, entry)
            self.puts += 1
            self._evict_locked()

    def nearest_seed(
        self, key: CacheKey, phi: int
    ) -> Optional[Tuple[int, List[int]]]:
        """Tightest cached *feasible* outcome above ``phi`` (for the
        PR 4 warm-start path), as ``(cached_phi, labels)``."""
        entry = self._load(key)
        if entry is None:
            return None
        best: Optional[int] = None
        for phi_text, record in entry["phis"].items():
            cached = int(phi_text)
            if cached > phi and record["feasible"]:
                if best is None or cached < best:
                    best = cached
        if best is None:
            return None
        self.seeds += 1
        return best, decode_labels(entry["phis"][str(best)]["labels"])

    def verified_floor(self, key: CacheKey) -> int:
        """Smallest phi not excluded by a cached *infeasible* verdict.

        Every cached infeasible verdict was probe-verified by the run
        that wrote it (and is checksum-guarded here), so by
        monotonicity the optimum is ``>= max(infeasible) + 1`` — a
        sound starting floor for the binary search.
        """
        entry = self._load(key)
        if entry is None:
            return 1
        worst = 0
        for phi_text, record in entry["phis"].items():
            if not record["feasible"]:
                worst = max(worst, int(phi_text))
        return worst + 1

    # -- finals ---------------------------------------------------------
    def get_final(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        """The recorded end-of-search summary, coherence-checked.

        Returns ``None`` unless the final's phi has a cached feasible
        verdict *and* (when ``phi > 1``) ``phi - 1`` has a cached
        infeasible one — the two facts that make ``phi`` *the* minimum
        rather than *a* feasible period.
        """
        entry = self._load(key)
        if entry is None or entry.get("final") is None:
            return None
        final = entry["final"]
        phi = int(final["phi"])
        phis = entry["phis"]
        at = phis.get(str(phi))
        below = phis.get(str(phi - 1))
        if at is None or not at["feasible"]:
            return None
        if phi > 1 and (below is None or below["feasible"]):
            return None
        self.final_hits += 1
        self._touch(self._entry_path(key))
        return dict(final)

    def put_final(
        self,
        key: CacheKey,
        phi: int,
        signature: str,
        schedule_certificate: Optional[Dict[str, Any]] = None,
        cycle_certificate: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record the verified end of a completed (non-degraded) search."""
        final = {
            "phi": int(phi),
            "signature": str(signature),
            "schedule_certificate": schedule_certificate,
            "cycle_certificate": cycle_certificate,
        }
        path = self._entry_path(key)
        with self._lock:
            self._mem.pop(path, None)
            entry = self._read_validated(path, key)
            if entry is None:
                entry = self._fresh_entry(key)
            entry["final"] = final
            self._store(path, entry)
            self.puts += 1
            self._evict_locked()

    def invalidate(self, key: CacheKey) -> None:
        """Heal one entry explicitly (used when a replayed result fails
        re-verification — the cold fallback path)."""
        with self._lock:
            self._heal(self._entry_path(key), "invalidated by caller")

    # -- maintenance ----------------------------------------------------
    def _touch(self, path: str) -> None:
        """LRU recency: bump the entry's mtime on every hit."""
        try:
            os.utime(path, None)
        except OSError:  # pragma: no cover - entry raced away
            pass

    def _evict_locked(self) -> None:
        """Drop least-recently-used entries until under ``max_bytes``.

        Caller holds the file lock.  Sizes are entry files only; the
        lock file and directories are bookkeeping noise.
        """
        stats: List[Tuple[float, int, str]] = []
        total = 0
        for path in self._entry_files():
            try:
                st = os.stat(path)
            except OSError:  # pragma: no cover - racing writer
                continue
            stats.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        if total <= self.max_bytes:
            return
        for _mtime, size, path in sorted(stats):
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover
                continue
            self._mem.pop(path, None)
            self.evictions += 1
            total -= size
            if total <= self.max_bytes:
                break

    def stats(self) -> Dict[str, Any]:
        """Directory + counter snapshot (CLI ``cache stats``, service
        health)."""
        files = self._entry_files()
        total = 0
        for path in files:
            try:
                total += os.stat(path).st_size
            except OSError:  # pragma: no cover
                pass
        return {
            "root": self.root,
            "schema": CACHE_SCHEMA,
            "entries": len(files),
            "bytes": total,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "seeds": self.seeds,
            "final_hits": self.final_hits,
            "puts": self.puts,
            "healed": self.healed,
            "ignored": self.ignored,
            "evictions": self.evictions,
        }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        with self._lock:
            for path in self._entry_files():
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:  # pragma: no cover
                    pass
            self._mem.clear()
        return removed
