"""Equivalence checking between subject circuits and mapped networks.

Three complementary checks, strongest-first:

* :func:`unrolled_equivalent` — **exact** bounded-cycle equivalence: both
  circuits are unrolled into combinational networks over per-cycle PI
  copies (registers initialized to 0) and the PO functions are compared
  as truth tables.  Exponential in ``|PIs| * cycles``; used on small
  circuits and as the oracle for the simulation check.
* :func:`simulation_equivalent` — lag-aligned random simulation: both
  circuits run the same lane-packed random stimulus; output streams must
  match after a warm-up window (and modulo per-PO latency introduced by
  pipelining).  Sound for mismatch detection, probabilistic for
  equivalence.
* retiming legality and clock-period recomputation live in
  :mod:`repro.retime.leiserson` (``apply_retiming`` raises on negative
  weights; ``clock_period`` re-measures), completing the compositional
  argument spelled out in ``DESIGN.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.boolfn.truthtable import TruthTable
from repro.comb.cone import cone_function
from repro.netlist.graph import NodeKind, SeqCircuit
from repro.verify.simulate import Simulator, random_stimulus


def unroll(circuit: SeqCircuit, cycles: int, name: Optional[str] = None) -> SeqCircuit:
    """Unroll ``cycles`` steps into a combinational circuit.

    PI ``x`` becomes ``x@t`` for each cycle ``t``; PO ``y`` becomes
    ``y@t``.  A registered read reaching before cycle 0 yields the initial
    value 0 (a constant-zero generator).
    """
    if cycles < 1:
        raise ValueError("need at least one cycle")
    out = SeqCircuit(name or f"{circuit.name}_u{cycles}")
    ids: Dict[Tuple[int, int], int] = {}
    zero: Optional[int] = None

    def const_zero() -> int:
        nonlocal zero
        if zero is None:
            zero = out.add_gate("init@0", TruthTable.const(0, False), [])
        return zero

    for t in range(cycles):
        for pi in circuit.pis:
            ids[(pi, t)] = out.add_pi(f"{circuit.name_of(pi)}@{t}")
    for t in range(cycles):
        for v in circuit.comb_topo_order():
            node = circuit.node(v)
            if node.kind is not NodeKind.GATE:
                continue
            pins = []
            for pin in node.fanins:
                tt = t - pin.weight
                pins.append((ids[(pin.src, tt)] if tt >= 0 else const_zero(), 0))
            ids[(v, t)] = out.add_gate(f"{node.name}@{t}", node.func, pins)
        for po in circuit.pos:
            pin = circuit.fanins(po)[0]
            tt = t - pin.weight
            src = ids[(pin.src, tt)] if tt >= 0 else const_zero()
            out.add_po(f"{circuit.name_of(po)}@{t}", src, 0)
    out.check()
    return out


def unrolled_equivalent(
    a: SeqCircuit,
    b: SeqCircuit,
    cycles: int,
    po_lags: Optional[Dict[str, int]] = None,
    skip_cycles: int = 0,
) -> bool:
    """Exact equivalence of the first ``cycles`` steps (zero-initialized).

    ``po_lags`` shifts ``b``'s outputs: PO ``y`` of ``a`` at cycle ``t``
    must equal PO ``y`` of ``b`` at cycle ``t + lag``.  ``skip_cycles``
    ignores an initial window (useful when initial states are known to
    differ).  The comparison space is ``|PIs| * cycles_b`` variables and
    must stay within the dense-table limit.
    """
    lags = po_lags or {}
    max_lag = max(lags.values(), default=0)
    total = cycles + max_lag
    pi_names = sorted(a.name_of(p) for p in a.pis)
    if pi_names != sorted(b.name_of(p) for p in b.pis):
        raise ValueError("PI name sets differ between the circuits")
    n_vars = len(pi_names) * total
    if n_vars > 18:
        raise ValueError("unrolled comparison too wide; use simulation instead")
    ua = unroll(a, total)
    ub = unroll(b, total)
    var_names = [f"{n}@{t}" for t in range(total) for n in pi_names]
    vars_a = [ua.id_of(s) for s in var_names]
    vars_b = [ub.id_of(s) for s in var_names]

    def po_function(
        circ: SeqCircuit, po_name: str, var_nodes: List[int]
    ) -> TruthTable:
        src = circ.fanins(circ.id_of(po_name))[0].src
        if circ.kind(src) is NodeKind.PI:
            return TruthTable.var(var_nodes.index(src), len(var_nodes))
        return cone_function(circ, src, var_nodes)

    for po in a.pos:
        base = a.name_of(po)
        lag = lags.get(base, 0)
        for t in range(skip_cycles, cycles):
            fa = po_function(ua, f"{base}@{t}", vars_a)
            fb = po_function(ub, f"{base}@{t + lag}", vars_b)
            if fa != fb:
                return False
    return True


def retiming_consistent(
    original: SeqCircuit,
    retimed: SeqCircuit,
    r: List[int],
) -> bool:
    """Certificate check: ``retimed`` is exactly ``retime(original, r)``.

    Verifies (a) identical node sets, kinds and gate functions, (b) the
    same connectivity with every edge weight shifted by
    ``r(dst) - r(src)``, and (c) non-negative retimed weights.  Together
    with the Leiserson-Saxe retiming theorem this *proves* behavioural
    equivalence up to initial states — the sound way to validate retimed
    state machines, whose reset states generally do not survive retiming
    and therefore cannot be checked by warm-up simulation (the classical
    initial-state caveat; see DESIGN.md).
    """
    if len(original) != len(retimed) or len(r) != len(original):
        return False
    for v in original.node_ids():
        a, b = original.node(v), retimed.node(v)
        if a.name != b.name or a.kind != b.kind or a.func != b.func:
            return False
        if len(a.fanins) != len(b.fanins):
            return False
        for pa, pb in zip(a.fanins, b.fanins):
            if pa.src != pb.src:
                return False
            if pb.weight != pa.weight + r[v] - r[pa.src]:
                return False
            if pb.weight < 0:  # pragma: no cover - Pin forbids negatives
                return False
    return True


def simulation_equivalent(
    a: SeqCircuit,
    b: SeqCircuit,
    cycles: int = 64,
    lanes: int = 64,
    seed: int = 0,
    po_lags: Optional[Dict[str, int]] = None,
    warmup: int = 16,
    sync_inputs: Optional[Dict[str, int]] = None,
    sync_cycles: int = 0,
) -> bool:
    """Lag-aligned random simulation comparison.

    Both circuits must expose the same PI and PO names.  PO ``y`` of ``a``
    at cycle ``t`` is compared with PO ``y`` of ``b`` at ``t + lag`` for
    ``t >= warmup``.  Probabilistic: agreement over ``lanes * cycles``
    samples per output.

    Circuits whose state does not synchronize from mismatched resets
    (mapping with sequential cuts and retiming both perturb initial
    states) can be driven through a *synchronizing preamble*: for the
    first ``sync_cycles`` frames the PIs named in ``sync_inputs`` are
    pinned to the given per-lane values (e.g. ``{"rst": all-ones}``),
    after which both machines sit in a common state; set
    ``warmup >= sync_cycles`` plus the settling slack.
    """
    lags = po_lags or {}
    max_lag = max(lags.values(), default=0)
    stimulus_names = [
        {a.name_of(pi): val for pi, val in frame.items()}
        for frame in random_stimulus(a, cycles + max_lag, seed, lanes)
    ]
    if sync_inputs and sync_cycles:
        for frame in stimulus_names[:sync_cycles]:
            frame.update(sync_inputs)

    def run(circ: SeqCircuit) -> Dict[str, List[int]]:
        sim = Simulator(circ, lanes)
        streams: Dict[str, List[int]] = {circ.name_of(po): [] for po in circ.pos}
        for frame in stimulus_names:
            values = {circ.id_of(name): v for name, v in frame.items()}
            outs = sim.step(values)
            for po, val in outs.items():
                streams[circ.name_of(po)].append(val)
        return streams

    sa = run(a)
    sb = run(b)
    if set(sa) != set(sb):
        raise ValueError("PO name sets differ between the circuits")
    for name, stream_a in sa.items():
        lag = lags.get(name, 0)
        stream_b = sb[name]
        for t in range(warmup, cycles):
            if stream_a[t] != stream_b[t + lag]:
                return False
    return True
