"""VCD (value change dump) trace writer for the simulator.

Debugging a mapped/retimed circuit usually means looking at waveforms;
this module records :class:`repro.verify.simulate.Simulator` runs into
standard VCD files (one lane) that any waveform viewer opens.

Usage::

    sim = Simulator(circuit, lanes=1)
    trace = VcdTracer(circuit, signals=["rst", "q_s0", "po0"])
    for frame in stimulus:
        outs = sim.step(frame)
        trace.sample(frame, sim, outs)
    trace.write("run.vcd")
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.netlist.graph import NodeKind, SeqCircuit
from repro.verify.simulate import Simulator

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _short_id(index: int) -> str:
    out = ""
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        out = _ID_CHARS[rem] + out
    return out


class VcdTracer:
    """Collects per-cycle samples of selected signals and writes VCD."""

    def __init__(
        self,
        circuit: SeqCircuit,
        signals: Optional[Sequence[str]] = None,
        timescale: str = "1ns",
        clock_period: int = 2,
    ) -> None:
        self.circuit = circuit
        if signals is None:
            names = [circuit.name_of(p) for p in circuit.pis] + [
                circuit.name_of(p) for p in circuit.pos
            ]
        else:
            names = list(signals)
            for name in names:
                if name not in circuit:
                    raise ValueError(f"unknown signal {name!r}")
        self.names = names
        self.node_ids = [circuit.id_of(n) for n in names]
        self.timescale = timescale
        self.clock_period = clock_period
        self._samples: List[Dict[str, int]] = []

    def sample(
        self,
        pi_frame: Dict[int, int],
        sim: Simulator,
        outputs: Dict[int, int],
    ) -> None:
        """Record one cycle (lane 0 of each watched signal)."""
        row: Dict[str, int] = {}
        for name, nid in zip(self.names, self.node_ids):
            kind = self.circuit.kind(nid)
            if kind is NodeKind.PI:
                value = pi_frame.get(nid, 0)
            elif nid in outputs:
                value = outputs[nid]
            else:
                # gates: most recent history entry holds this cycle's value
                hist = sim._hist[nid]
                value = hist[0] if hist else 0
            row[name] = value & 1
        self._samples.append(row)

    def render(self) -> str:
        lines = [
            "$date repro trace $end",
            f"$timescale {self.timescale} $end",
            f"$scope module {self.circuit.name} $end",
        ]
        ids = {name: _short_id(i) for i, name in enumerate(self.names)}
        clk_id = _short_id(len(self.names))
        for name in self.names:
            lines.append(f"$var wire 1 {ids[name]} {name} $end")
        lines.append(f"$var wire 1 {clk_id} clk $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        previous: Dict[str, Optional[int]] = {n: None for n in self.names}
        half = max(1, self.clock_period // 2)
        for t, row in enumerate(self._samples):
            lines.append(f"#{t * self.clock_period}")
            lines.append(f"1{clk_id}")
            for name in self.names:
                value = row[name]
                if previous[name] != value:
                    lines.append(f"{value}{ids[name]}")
                    previous[name] = value
            lines.append(f"#{t * self.clock_period + half}")
            lines.append(f"0{clk_id}")
        lines.append(f"#{len(self._samples) * self.clock_period}")
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())


def trace_random_run(
    circuit: SeqCircuit,
    cycles: int,
    seed: int = 0,
    signals: Optional[Sequence[str]] = None,
) -> VcdTracer:
    """Convenience: simulate random stimulus and return the loaded tracer."""
    from repro.verify.simulate import random_stimulus

    sim = Simulator(circuit, lanes=1)
    tracer = VcdTracer(circuit, signals=signals)
    for frame in random_stimulus(circuit, cycles, seed, lanes=1):
        outs = sim.step(frame)
        tracer.sample(frame, sim, outs)
    return tracer
