"""Ternary (0/1/X) simulation: synchronization from unknown states.

The reset-preamble verification of :mod:`repro.verify.equiv` compares two
concrete zero-initialized runs; a sharper question is whether a reset
sequence synchronizes a machine from *every* initial state.  Ternary
simulation answers it conservatively: start all registers at X (unknown),
drive the candidate synchronizing input sequence, and propagate
three-valued values exactly per gate (an output is known iff all
completions of its unknown inputs agree).  If every register is known
afterwards, the sequence is a synchronizing sequence — and any two
implementations of the machine agree from that point on regardless of
power-up state, which is precisely the property the equivalence flow
relies on after mapping and retiming.

Conservative means one-sided: X-outputs may be reported for registers
that are in fact determined (ternary simulation is not complete), so
``synchronizes`` returning True is a proof, False is "unknown".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.netlist.graph import NodeKind, SeqCircuit

#: Ternary values.
ZERO, ONE, X = 0, 1, 2


def _gate_eval(func, inputs: List[int]) -> int:
    """Exact ternary evaluation: known iff all completions agree."""
    unknown = [i for i, v in enumerate(inputs) if v == X]
    base = 0
    for i, v in enumerate(inputs):
        if v == ONE:
            base |= 1 << i
    if not unknown:
        return func.value(base)
    first: Optional[int] = None
    for combo in range(1 << len(unknown)):
        idx = base
        for j, pos in enumerate(unknown):
            if (combo >> j) & 1:
                idx |= 1 << pos
        value = func.value(idx)
        if first is None:
            first = value
        elif value != first:
            return X
    return first if first is not None else X


class XSimulator:
    """Single-lane ternary simulator over the retiming graph."""

    def __init__(self, circuit: SeqCircuit) -> None:
        self.circuit = circuit
        self._order = circuit.comb_topo_order()
        self._depth: List[int] = [0] * len(circuit)
        for dst in circuit.node_ids():
            for pin in circuit.fanins(dst):
                self._depth[pin.src] = max(self._depth[pin.src], pin.weight)
        self.reset_unknown()

    def reset_unknown(self) -> None:
        """Every register/history entry becomes X (arbitrary power-up)."""
        self._hist: List[List[int]] = [
            [X] * (self._depth[v] + 1) for v in self.circuit.node_ids()
        ]

    def step(self, pi_values: Dict[int, int]) -> Dict[int, int]:
        """Advance one cycle with ternary PI values (default X)."""
        circuit = self.circuit
        current: List[int] = [X] * len(circuit)
        outputs: Dict[int, int] = {}
        for v in self._order:
            node = circuit.node(v)
            if node.kind is NodeKind.PI:
                current[v] = pi_values.get(v, X)
            elif node.kind is NodeKind.PO:
                pin = node.fanins[0]
                value = (
                    current[pin.src]
                    if pin.weight == 0
                    else self._hist[pin.src][pin.weight - 1]
                )
                current[v] = value
                outputs[v] = value
            else:
                ins = [
                    current[pin.src]
                    if pin.weight == 0
                    else self._hist[pin.src][pin.weight - 1]
                    for pin in node.fanins
                ]
                current[v] = _gate_eval(node.func, ins)
        for v in circuit.node_ids():
            hist = self._hist[v]
            if hist:
                hist.insert(0, current[v])
                hist.pop()
        return outputs

    def unknown_state_bits(self) -> int:
        """Number of still-unknown register (history) entries."""
        total = 0
        for v in self.circuit.node_ids():
            depth = self._depth[v]
            total += sum(1 for entry in self._hist[v][:depth] if entry == X)
        return total


@dataclass
class SyncReport:
    """Outcome of a synchronization check."""

    synchronized: bool
    cycles_used: int
    unknown_bits: int


def synchronizes(
    circuit: SeqCircuit,
    frames: Sequence[Dict[str, int]],
) -> SyncReport:
    """Does driving ``frames`` (PI name -> 0/1) pin down every register?

    Unlisted PIs stay X each cycle, so a ``True`` result holds for *all*
    possible data inputs — e.g. ``[{"rst": 1}] * 4`` certifies a 4-cycle
    reset pulse as a synchronizing sequence.
    """
    sim = XSimulator(circuit)
    used = 0
    for frame in frames:
        values = {circuit.id_of(name): v for name, v in frame.items()}
        sim.step(values)
        used += 1
        if sim.unknown_state_bits() == 0:
            return SyncReport(True, used, 0)
    remaining = sim.unknown_state_bits()
    return SyncReport(remaining == 0, used, remaining)


def outputs_synchronized(
    circuit: SeqCircuit,
    frames: Sequence[Dict[str, int]],
    probe_cycles: int = 8,
    probe_inputs: Optional[Sequence[Dict[str, int]]] = None,
) -> bool:
    """Are the primary outputs determined after the preamble?

    Weaker than full-state synchronization but exactly what behavioural
    equivalence needs: residual X state bits are harmless when they can
    no longer reach an output.  After driving ``frames`` (unlisted PIs
    X), ``probe_cycles`` further cycles are driven with *known* inputs
    (all-zero unless ``probe_inputs`` given) and every PO value must be
    known.  Conservative: a True is a proof.
    """
    sim = XSimulator(circuit)
    for frame in frames:
        sim.step({circuit.id_of(name): v for name, v in frame.items()})
    probes = list(probe_inputs or [])
    while len(probes) < probe_cycles:
        probes.append({})
    for frame in probes[:probe_cycles]:
        values = {pi: ZERO for pi in circuit.pis}
        values.update(
            {circuit.id_of(name): v for name, v in frame.items()}
        )
        outs = sim.step(values)
        if any(v == X for v in outs.values()):
            return False
    return True
