"""BDD-based combinational equivalence checking.

Truth-table comparison (:mod:`repro.verify.equiv`) is exact but dense —
it caps out around 18 variables.  This module builds each PO's ROBDD
over the shared PI order instead, which handles the wide-but-structured
cones real circuits produce (the classical application of OBDDs [5, 14]).

Used for: cross-checking FlowMap/FlowSYN mappings on circuits too wide
for dense tables, and validating the one-hot FSM synthesis output planes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.boolfn.bdd import BDD
from repro.netlist.graph import NodeKind, SeqCircuit


class BddBlowup(RuntimeError):
    """The BDD grew past the configured node budget."""


def build_po_bdds(
    circuit: SeqCircuit,
    manager: BDD,
    pi_var: Dict[str, int],
    node_budget: int = 200_000,
) -> Dict[str, int]:
    """ROBDDs of every PO over the manager variables ``pi_var[name]``.

    The circuit must be combinational.  Raises :class:`BddBlowup` when
    the unique table exceeds ``node_budget`` nodes.
    """
    for *_e, w in circuit.edges():
        if w != 0:
            raise ValueError("BDD equivalence requires a combinational circuit")
    values: Dict[int, int] = {}
    for pi in circuit.pis:
        values[pi] = manager.var_node(pi_var[circuit.name_of(pi)])
    for v in circuit.comb_topo_order():
        kind = circuit.kind(v)
        if kind is NodeKind.PI:
            continue
        if kind is NodeKind.PO:
            continue
        node = circuit.node(v)
        func = node.func
        # Shannon-expand the gate function over its fanin BDDs.
        fanin_bdds = [values[p.src] for p in node.fanins]
        values[v] = _apply_table(manager, func, fanin_bdds)
        if len(manager) > node_budget:
            raise BddBlowup(
                f"BDD for {circuit.name}/{node.name} exceeded "
                f"{node_budget} nodes"
            )
    out: Dict[str, int] = {}
    for po in circuit.pos:
        pin = circuit.fanins(po)[0]
        out[circuit.name_of(po)] = values[pin.src]
    return out


def _apply_table(manager: BDD, func, args: List[int]) -> int:
    """Compose a truth-table gate over argument BDDs (Shannon recursion)."""
    if func.n == 0:
        return 1 if func.bits & 1 else 0

    from repro.boolfn.truthtable import TruthTable

    memo: Dict[Tuple[int, int], int] = {}

    def build(table: TruthTable, idx: int) -> int:
        if table.is_const():
            return 1 if table.bits else 0
        if idx == len(args):  # pragma: no cover - consts caught above
            raise AssertionError("ran out of arguments")
        key = (table.bits, idx)
        cached = memo.get(key)
        if cached is not None:
            return cached
        hi = build(table.cofactor_keep(idx, 1), idx + 1)
        lo = build(table.cofactor_keep(idx, 0), idx + 1)
        result = manager.ite(args[idx], hi, lo)
        memo[key] = result
        return result

    return build(func, 0)


def combinational_equivalent(
    a: SeqCircuit,
    b: SeqCircuit,
    node_budget: int = 200_000,
) -> bool:
    """Exact PO-by-PO equivalence of two combinational circuits.

    Both circuits must have the same PI and PO name sets; canonicity of
    the shared ROBDD manager reduces the comparison to handle equality.
    """
    pis_a = sorted(a.name_of(p) for p in a.pis)
    pis_b = sorted(b.name_of(p) for p in b.pis)
    if pis_a != pis_b:
        raise ValueError("PI name sets differ between the circuits")
    manager = BDD(len(pis_a))
    pi_var = {name: i for i, name in enumerate(pis_a)}
    fa = build_po_bdds(a, manager, pi_var, node_budget)
    fb = build_po_bdds(b, manager, pi_var, node_budget)
    if set(fa) != set(fb):
        raise ValueError("PO name sets differ between the circuits")
    return all(fa[name] == fb[name] for name in fa)
