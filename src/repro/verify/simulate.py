"""Cycle-accurate simulation of sequential circuits.

Registers live on edges (weight ``w`` = read the driver's value from ``w``
cycles ago), so the simulator keeps a bounded history per node: the value
of node ``u`` at cycles ``t, t-1, ..., t-maxw(u)``.  All registers
initialize to 0 (the BLIF reader records declared initial values but the
retiming theory this project reproduces is initial-state-agnostic; see
``DESIGN.md``).

Values are bit-parallel: each node value is a Python integer whose bit
``j`` is the value in simulation *lane* ``j``, so one pass simulates any
number of independent random stimulus streams at once.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.compat import default_rng
from repro.netlist.graph import NodeKind, SeqCircuit


class Simulator:
    """Bit-parallel simulator for a :class:`SeqCircuit`."""

    def __init__(self, circuit: SeqCircuit, lanes: int = 64) -> None:
        if lanes < 1:
            raise ValueError("need at least one simulation lane")
        self.circuit = circuit
        self.lanes = lanes
        self._mask = (1 << lanes) - 1
        self._order = circuit.comb_topo_order()
        # History depth per node: deepest read of that node.
        self._depth: List[int] = [0] * len(circuit)
        for dst in circuit.node_ids():
            for pin in circuit.fanins(dst):
                self._depth[pin.src] = max(self._depth[pin.src], pin.weight)
        self.reset()

    def reset(self) -> None:
        """Zero every register and history entry."""
        self._hist: List[List[int]] = [
            [0] * (self._depth[v] + 1) for v in self.circuit.node_ids()
        ]

    def _read(self, src: int, weight: int, current: List[int]) -> int:
        if weight == 0:
            return current[src]
        return self._hist[src][weight - 1]

    def step(self, pi_values: Dict[int, int]) -> Dict[int, int]:
        """Advance one cycle.

        ``pi_values`` maps PI node ids to lane-packed values; the return
        maps PO node ids to lane-packed values.
        """
        circuit = self.circuit
        current: List[int] = [0] * len(circuit)
        outputs: Dict[int, int] = {}
        for v in self._order:
            node = circuit.node(v)
            if node.kind is NodeKind.PI:
                current[v] = pi_values.get(v, 0) & self._mask
            elif node.kind is NodeKind.PO:
                pin = node.fanins[0]
                value = self._read(pin.src, pin.weight, current)
                current[v] = value
                outputs[v] = value
            else:
                value = self._eval_gate(node, v, current)
                current[v] = value
        # Shift histories.
        for v in circuit.node_ids():
            hist = self._hist[v]
            if hist:
                hist.insert(0, current[v])
                hist.pop()
        return outputs

    def _eval_gate(self, node, v: int, current: List[int]) -> int:
        ins = [
            self._read(pin.src, pin.weight, current) for pin in node.fanins
        ]
        func = node.func
        out = 0
        mask = self._mask
        for m in range(func.size):
            if not (func.bits >> m) & 1:
                continue
            term = mask
            for j, val in enumerate(ins):
                term &= val if (m >> j) & 1 else (~val & mask)
                if not term:
                    break
            out |= term
            if out == mask:
                break
        return out

    def run(
        self, stimulus: Sequence[Dict[int, int]]
    ) -> List[Dict[int, int]]:
        """Simulate a stimulus sequence; returns PO values per cycle."""
        return [self.step(values) for values in stimulus]


def random_stimulus(
    circuit: SeqCircuit, cycles: int, seed: int, lanes: int = 64
) -> List[Dict[int, int]]:
    """Uniform random lane-packed PI values for ``cycles`` steps."""
    rng = default_rng(seed)
    pis = circuit.pis
    nbytes = (lanes + 7) // 8
    mask = (1 << lanes) - 1
    stimulus = []
    for _ in range(cycles):
        stimulus.append(
            {
                pi: int.from_bytes(rng.bytes(nbytes), "little") & mask
                for pi in pis
            }
        )
    return stimulus
