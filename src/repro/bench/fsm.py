"""Synthetic FSM benchmarks: STG generation, encoding, logic synthesis.

The paper's MCNC test set consists of finite state machines (KISS2 state
transition tables) run through SIS sequential synthesis and ``dmig`` gate
decomposition.  Those exact netlists are not redistributable here, so this
module rebuilds the *pipeline* (see ``DESIGN.md`` Section 3):

1. :func:`random_fsm` — a deterministic random state transition graph
   with the published benchmark's state/input/output counts.  Per state,
   the input space is partitioned into *disjoint* cubes (a random decision
   tree), so the machine is deterministic without row priority.
2. :func:`fsm_to_circuit` — structural one-hot synthesis: one guard
   product per transition row (state literal AND input literals), an OR
   plane per next-state/output signal, everything factored into 2-input
   gates with shared input inverters.  This mirrors how SIS-era flows
   realize sparse STGs and yields the paper's gate-count ballpark.
3. :func:`encode_fsm` — the alternative *encoded* path (binary or
   one-hot state assignment with exact truth tables per next-state bit,
   factored by :mod:`repro.comb.gatedecomp`); exponential in
   ``inputs + state bits``, used for small machines and cross-checks.

Either way the result is a K-bounded retiming graph whose loops run
through the FSM state registers, with the reset state active-low encoded
so that the all-zero initial registers start the machine in reset.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compat import default_rng
from repro.boolfn.truthtable import TruthTable
from repro.comb.gatedecomp import decompose_gate_function
from repro.netlist.graph import SeqCircuit
from repro.netlist.kiss import FSM

_AND2 = TruthTable.from_function(2, lambda a, b: a and b)
_OR2 = TruthTable.from_function(2, lambda a, b: a or b)
_NOT1 = TruthTable.from_function(1, lambda a: not a)
_CONST0 = TruthTable.const(0, False)


# ----------------------------------------------------------------------
# STG generation
# ----------------------------------------------------------------------
def _disjoint_cubes(n_inputs: int, depth: int, rng: "object") -> List[str]:
    """Partition the input space into disjoint cubes via a random tree."""
    cubes = ["-" * n_inputs]
    for _ in range(depth):
        nxt: List[str] = []
        for cube in cubes:
            free = [i for i, ch in enumerate(cube) if ch == "-"]
            if not free or rng.random() < 0.25:
                nxt.append(cube)
                continue
            var = int(rng.choice(free))
            for val in "01":
                nxt.append(cube[:var] + val + cube[var + 1 :])
        cubes = nxt
    return cubes


def random_fsm(
    name: str,
    n_states: int,
    n_inputs: int,
    n_outputs: int,
    seed: int,
    split_depth: int = 2,
    output_density: float = 0.3,
    stay_bias: float = 0.3,
) -> FSM:
    """A deterministic random Mealy machine with disjoint cube guards.

    One ring transition per state keeps the graph strongly connected;
    ``stay_bias`` makes self-loops common (as in real controllers) and
    ``output_density`` keeps the output plane sparse.
    """
    if n_states < 2:
        raise ValueError("need at least two states")
    rng = default_rng(seed)
    states = [f"s{i}" for i in range(n_states)]
    fsm = FSM(name, n_inputs, n_outputs, reset_state=states[0])

    def outputs() -> str:
        return "".join(
            "1" if rng.random() < output_density else "0" for _ in range(n_outputs)
        )

    for i, state in enumerate(states):
        cubes = _disjoint_cubes(n_inputs, split_depth, rng)
        for j, cube in enumerate(cubes):
            if j == 0:
                target = states[(i + 1) % n_states]  # ring edge
            elif rng.random() < stay_bias:
                target = state
            else:
                target = states[int(rng.integers(0, n_states))]
            fsm.add(cube, state, target, outputs())
    return fsm


# ----------------------------------------------------------------------
# Structural one-hot synthesis
# ----------------------------------------------------------------------
def fsm_to_circuit(
    fsm: FSM,
    name: Optional[str] = None,
    with_reset: bool = False,
) -> SeqCircuit:
    """Structural one-hot synthesis into a 2-bounded gate network.

    Requires disjoint transition guards per state (as :func:`random_fsm`
    produces).  The reset state's flip-flop is active-low so that the
    all-zero initial registers start the machine in its reset state.

    ``with_reset`` additionally emits an ``rst`` primary input that
    forces the next state to the reset state while asserted.  Holding it
    for a few cycles is a synchronizing sequence, which makes the circuit
    verifiable end-to-end across transformations that perturb initial
    states (sequential cuts, retiming) — see
    :func:`repro.verify.equiv.simulation_equivalent`'s ``sync_inputs``.
    """
    circuit = SeqCircuit(name or fsm.name)
    states = fsm.states
    reset = fsm.reset_state or states[0]
    n = fsm.num_inputs
    pis = [circuit.add_pi(f"in{i}") for i in range(n)]
    rst = circuit.add_pi("rst") if with_reset else None
    nrst = (
        circuit.add_gate("nrst", _NOT1, [(rst, 0)]) if with_reset else None
    )
    inverters = [
        circuit.add_gate(f"nin{i}", _NOT1, [(pis[i], 0)]) for i in range(n)
    ]

    # State-bit carriers: signal q_s = ST_s delayed by one register, where
    # ST_s is the OR plane (wrapped with the reset mux when requested) and
    # the reset state is stored active-low.  Placeholders first (feedback).
    ns_root: Dict[str, int] = {
        s: circuit.add_gate_placeholder(f"ns_{s}", _OR2) for s in states
    }
    if with_reset:
        state_sig: Dict[str, int] = {}
        for s in states:
            gated = circuit.add_gate(f"stg_{s}", _AND2, [(nrst, 0), (ns_root[s], 0)])
            if s == reset:
                state_sig[s] = circuit.add_gate(
                    f"st_{s}", _OR2, [(gated, 0), (rst, 0)]
                )
            else:
                state_sig[s] = gated
    else:
        state_sig = dict(ns_root)
    q_node: Dict[str, Tuple[int, int]] = {}
    for s in states:
        if s == reset:
            circuit.add_gate_placeholder(f"nsn_{s}", _NOT1)
            q = circuit.add_gate_placeholder(f"q_{s}", _NOT1)
            q_node[s] = (q, 0)
        else:
            q_node[s] = (state_sig[s], 1)

    # SIS-style multilevel networks are skewed (algebraic factoring emits
    # left-deep chains), which is what makes the paper's loops critical:
    # build the guard products and OR planes as chains, not balanced trees.
    def and_tree(label: str, pins: List[Tuple[int, int]]) -> Tuple[int, int]:
        acc = pins[0]
        for pin in pins[1:]:
            acc = (
                circuit.add_gate(f"{label}~a{len(circuit)}", _AND2, [acc, pin]),
                0,
            )
        return acc

    def or_tree_pins(pins: List[Tuple[int, int]], label: str) -> List[Tuple[int, int]]:
        acc = pins[0]
        for pin in pins[1:-1]:
            acc = (
                circuit.add_gate(f"{label}~o{len(circuit)}", _OR2, [acc, pin]),
                0,
            )
        return [acc, pins[-1]]

    # Guard product per transition row.
    ns_terms: Dict[str, List[Tuple[int, int]]] = {s: [] for s in states}
    out_terms: Dict[int, List[Tuple[int, int]]] = {
        m: [] for m in range(fsm.num_outputs)
    }
    for r, t in enumerate(fsm.transitions):
        pins: List[Tuple[int, int]] = [q_node[t.state]]
        for i, ch in enumerate(t.inputs):
            if ch == "1":
                pins.append((pis[i], 0))
            elif ch == "0":
                pins.append((inverters[i], 0))
        guard = and_tree(f"g{r}", pins)
        ns_terms[t.next_state].append(guard)
        for m, ch in enumerate(t.outputs):
            if ch == "1":
                out_terms[m].append(guard)

    zero = None

    def const_zero() -> Tuple[int, int]:
        nonlocal zero
        if zero is None:
            zero = circuit.add_gate("zero", _CONST0, [])
        return (zero, 0)

    def finish_or(root: int, terms: List[Tuple[int, int]], label: str) -> None:
        """Wire an OR2 placeholder from a term list."""
        if not terms:
            circuit.set_fanins(root, [const_zero(), const_zero()])
            return
        if len(terms) == 1:
            circuit.set_fanins(root, [terms[0], const_zero()])
            return
        pins = or_tree_pins(terms, label)
        circuit.set_fanins(root, pins if len(pins) == 2 else [pins[0], const_zero()])

    for s in states:
        finish_or(ns_root[s], ns_terms[s], f"ns_{s}")
    # Active-low reset storage: register holds NOT(ST_reset); q_reset
    # recovers it with another inverter, so all-zero init means "in reset".
    ninv = circuit.id_of(f"nsn_{reset}")
    circuit.set_fanins(ninv, [(state_sig[reset], 0)])
    circuit.set_fanins(circuit.id_of(f"q_{reset}"), [(ninv, 1)])

    for m in range(fsm.num_outputs):
        root = circuit.add_gate_placeholder(f"out{m}", _OR2)
        finish_or(root, out_terms[m], f"out{m}")
        circuit.add_po(f"po{m}", root, 0)
    circuit.check()
    return circuit


# ----------------------------------------------------------------------
# Encoded synthesis (exact truth tables; small machines only)
# ----------------------------------------------------------------------
def encode_fsm(
    fsm: FSM, encoding: str = "binary"
) -> Tuple[List[TruthTable], List[TruthTable], int]:
    """State assignment + exact next-state/output tables.

    Returns ``(next_state_tables, output_tables, state_bits)``; every
    table is over ``n_inputs + state_bits`` variables with the inputs in
    the low positions.  Unreachable/invalid state codes behave like the
    reset state (a completely specified don't-care fill).
    """
    states = fsm.states
    n = fsm.num_inputs
    if encoding == "binary":
        bits = max(1, (len(states) - 1).bit_length())
        code_of = {s: i for i, s in enumerate(states)}
    elif encoding == "onehot":
        bits = len(states)
        code_of = {s: 1 << i for i, s in enumerate(states)}
    else:
        raise ValueError(f"unknown encoding {encoding!r}")
    width = n + bits
    if width > 16:
        raise ValueError(
            f"{fsm.name}: encoded table width {width} too large; "
            "use the structural path"
        )
    decode = {code: s for s, code in code_of.items()}
    reset = fsm.reset_state or states[0]

    ns_bits = [0] * bits
    out_bits = [0] * fsm.num_outputs
    for row in range(1 << width):
        input_bits = row & ((1 << n) - 1)
        state_code = row >> n
        state = decode.get(state_code, reset)
        nxt, outs = fsm.step(state, input_bits)
        nxt_code = code_of[nxt]
        for j in range(bits):
            if (nxt_code >> j) & 1:
                ns_bits[j] |= 1 << row
        for m, ch in enumerate(outs):
            if ch == "1":
                out_bits[m] |= 1 << row
    ns_tables = [TruthTable(width, b) for b in ns_bits]
    out_tables = [TruthTable(width, b) for b in out_bits]
    return ns_tables, out_tables, bits


def fsm_to_circuit_encoded(
    fsm: FSM,
    encoding: str = "binary",
    k_bound: int = 2,
    name: Optional[str] = None,
) -> SeqCircuit:
    """Encoded synthesis: exact per-bit tables factored into gates.

    Exponential in ``inputs + state bits`` and prone to large factored
    networks for dense machines; intended for small cross-check circuits.
    Note the all-zero initial registers equal the reset state's code only
    under binary encoding with reset = first state (code 0); for one-hot
    the all-zero code *behaves* like reset because the don't-care fill of
    :func:`encode_fsm` maps invalid codes to the reset state.
    """
    ns_tables, out_tables, _bits = encode_fsm(fsm, encoding)
    n = fsm.num_inputs
    circuit = SeqCircuit(name or fsm.name)
    pis = [circuit.add_pi(f"in{i}") for i in range(n)]

    trees = []
    roots: Dict[str, int] = {}
    for label, table in [(f"ns{j}", t) for j, t in enumerate(ns_tables)] + [
        (f"out{m}", t) for m, t in enumerate(out_tables)
    ]:
        shrunk, support = table.shrink_to_support()
        if shrunk.n == 0:
            gid = circuit.add_gate_placeholder(label, shrunk)
            trees.append((label, None, support, [gid]))
            roots[label] = gid
            continue
        tree = decompose_gate_function(shrunk, k_bound)
        refs = []
        for j, lut in enumerate(tree.luts):
            is_root = j == len(tree.luts) - 1
            gate_name = label if is_root else f"{label}~{j}"
            refs.append(circuit.add_gate_placeholder(gate_name, lut.func))
        trees.append((label, tree, support, refs))
        roots[label] = refs[-1]

    def leaf_pin(var: int) -> Tuple[int, int]:
        if var < n:
            return pis[var], 0
        return roots[f"ns{var - n}"], 1  # state bit = next-state root @ 1

    for label, tree, support, refs in trees:
        if tree is None:
            circuit.set_fanins(refs[0], [])
            continue
        for j, lut in enumerate(tree.luts):
            pins = []
            for ref in lut.inputs:
                if ref >= 0:
                    pins.append(leaf_pin(support[ref]))
                else:
                    pins.append((refs[-1 - ref], 0))
            circuit.set_fanins(refs[j], pins)
    for m in range(fsm.num_outputs):
        circuit.add_po(f"po{m}", roots[f"out{m}"], 0)
    circuit.check()
    return circuit


# ----------------------------------------------------------------------
# Oracle check
# ----------------------------------------------------------------------
def simulate_fsm_circuit(
    fsm: FSM,
    circuit: SeqCircuit,
    steps: int,
    seed: int,
) -> bool:
    """Check that the synthesized circuit tracks the STG from reset.

    Works for both synthesis paths: the all-zero register state means
    "reset state" by construction in each.
    """
    from repro.verify.simulate import Simulator

    rng = default_rng(seed)
    sim = Simulator(circuit, lanes=1)
    state = fsm.reset_state or fsm.states[0]
    for _t in range(steps):
        input_bits = int(rng.integers(0, 1 << fsm.num_inputs))
        nxt, outs = fsm.step(state, input_bits)
        frame = {
            circuit.id_of(f"in{i}"): (input_bits >> i) & 1
            for i in range(fsm.num_inputs)
        }
        if "rst" in circuit:
            frame[circuit.id_of("rst")] = 0
        got = sim.step(frame)
        for m in range(fsm.num_outputs):
            po = circuit.id_of(f"po{m}")
            if got[po] != (1 if outs[m] == "1" else 0):
                return False
        state = nxt
    return True
