"""ISCAS'89-like sequential datapath generators.

The paper's test set includes four ISCAS'89 circuits (register-rich
sequential logic rather than encoded controllers).  This module generates
structurally comparable netlists from classical datapath blocks, all as
2-bounded gate networks over the retiming-graph representation:

* :func:`lfsr` — Fibonacci linear feedback shift register (long loops,
  one register per stage: MDR ratio near 1 but wide XOR feedback);
* :func:`ripple_counter` — synchronous counter (AND carry chain feeding
  every bit's toggle: deep loops through a single register level);
* :func:`accumulator` — ripple-carry adder accumulating an input bus
  (the classic hard retiming loop: carry chain + state feedback);
* :func:`fir_taps` — feed-forward multiply-accumulate-ish tap network
  over delayed inputs (pipelinable I/O paths, no loops);
* :func:`datapath_circuit` — a seeded composition of the blocks sized to
  a target gate count, used by the benchmark suite.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.compat import default_rng
from repro.boolfn.truthtable import TruthTable
from repro.netlist.graph import SeqCircuit

AND2 = TruthTable.from_function(2, lambda a, b: a and b)
OR2 = TruthTable.from_function(2, lambda a, b: a or b)
XOR2 = TruthTable.from_function(2, lambda a, b: a != b)
NOT1 = TruthTable.from_function(1, lambda a: not a)
MUX_AND = TruthTable.from_function(2, lambda s, a: s and a)
MUX_NAND = TruthTable.from_function(2, lambda s, a: (not s) and a)


class _Builder:
    """Thin helper with fresh-name gate constructors."""

    def __init__(self, circuit: SeqCircuit, prefix: str) -> None:
        self.c = circuit
        self.prefix = prefix
        self._counter = 0

    def _name(self, tag: str) -> str:
        self._counter += 1
        return f"{self.prefix}.{tag}{self._counter}"

    def gate(self, func: TruthTable, pins: List[Tuple[int, int]], tag: str = "g") -> int:
        return self.c.add_gate(self._name(tag), func, pins)

    def placeholder(self, func: TruthTable, tag: str = "g") -> int:
        return self.c.add_gate_placeholder(self._name(tag), func)

    def mux(self, sel: Tuple[int, int], a: Tuple[int, int], b: Tuple[int, int]) -> int:
        """2:1 mux from 2-input gates: sel ? b : a."""
        hi = self.gate(MUX_AND, [sel, b], "mxh")
        lo = self.gate(MUX_NAND, [sel, a], "mxl")
        return self.gate(OR2, [(hi, 0), (lo, 0)], "mxo")


def lfsr(
    circuit: SeqCircuit,
    prefix: str,
    width: int,
    taps: Sequence[int],
    enable: Tuple[int, int],
) -> List[int]:
    """An enabled Fibonacci LFSR; returns the per-stage next-value gates.

    Stage ``i``'s current value is ``stage[i]`` read through 1 register.
    """
    if not taps or any(not 0 <= t < width for t in taps):
        raise ValueError("taps must index LFSR stages")
    b = _Builder(circuit, prefix)
    stages = [b.placeholder(OR2, tag="st") for _ in range(width)]

    # feedback = XOR of tapped stage values (each read through 1 FF).
    fb: Tuple[int, int] = (stages[taps[0]], 1)
    for t in taps[1:]:
        fb = (b.gate(XOR2, [fb, (stages[t], 1)], "fb"), 0)
    for i in range(width):
        source = fb if i == 0 else (stages[i - 1], 1)
        hold = (stages[i], 1)
        mux = b.mux(enable, hold, source)
        circuit.set_fanins(stages[i], [(mux, 0), (mux, 0)])
    return stages


def ripple_counter(
    circuit: SeqCircuit,
    prefix: str,
    width: int,
    enable: Tuple[int, int],
) -> List[int]:
    """Synchronous counter: bit i toggles when all lower bits are 1."""
    b = _Builder(circuit, prefix)
    bits = [b.placeholder(XOR2, tag="bit") for _ in range(width)]
    carry = enable
    for i in range(width):
        toggle = carry
        circuit.set_fanins(bits[i], [(bits[i], 1), toggle])
        carry = (b.gate(AND2, [carry, (bits[i], 1)], "cy"), 0)
    return bits


def accumulator(
    circuit: SeqCircuit,
    prefix: str,
    width: int,
    addend: Sequence[Tuple[int, int]],
) -> List[int]:
    """Ripple-carry accumulator: ``acc' = acc + addend`` (mod 2**width)."""
    if len(addend) != width:
        raise ValueError("addend bus width mismatch")
    b = _Builder(circuit, prefix)
    # OR2(x, x) buffers hold the register-driving sum values so that the
    # feedback reads (sums[i], 1) can be wired before the adder exists.
    sums = [b.placeholder(OR2, tag="sum") for _ in range(width)]
    carry: Optional[Tuple[int, int]] = None
    for i in range(width):
        acc_bit = (sums[i], 1)
        x = addend[i]
        half = b.gate(XOR2, [acc_bit, x], "hx")
        if carry is None:
            value = half
            carry = (b.gate(AND2, [acc_bit, x], "hc"), 0)
        else:
            value = b.gate(XOR2, [(half, 0), carry], "fx")
            gen = b.gate(AND2, [acc_bit, x], "cg")
            prop = b.gate(AND2, [(half, 0), carry], "cp")
            carry = (b.gate(OR2, [(gen, 0), (prop, 0)], "co"), 0)
        circuit.set_fanins(sums[i], [(value, 0), (value, 0)])
    return sums


def array_multiplier(
    circuit: SeqCircuit,
    prefix: str,
    a_bus: Sequence[Tuple[int, int]],
    b_bus: Sequence[Tuple[int, int]],
    pipeline_rows: bool = True,
) -> List[int]:
    """A (optionally row-pipelined) array multiplier: ``p = a * b``.

    Classic carry-save array: row ``j`` adds the partial product
    ``a & b_j`` shifted by ``j``; with ``pipeline_rows`` a register bank
    separates consecutive rows (the textbook pipelined multiplier whose
    retiming behaviour motivates much of the retiming literature).
    Returns the ``len(a)+len(b)`` product bit nodes, LSB first; bit ``i``
    is valid ``len(b)-1`` cycles after the operands when pipelined.
    """
    n, m = len(a_bus), len(b_bus)
    if n == 0 or m == 0:
        raise ValueError("operand buses must be non-empty")
    b = _Builder(circuit, prefix)
    width = n + m

    def reg(pin: Tuple[int, int], extra: int) -> Tuple[int, int]:
        return (pin[0], pin[1] + extra)

    # Running sum bits (value pins) and the delay each row's inputs need.
    total: List[Optional[Tuple[int, int]]] = [None] * width
    for j in range(m):
        delay = j if pipeline_rows else 0
        row_bits: List[Optional[Tuple[int, int]]] = [None] * width
        for i in range(n):
            pp = b.gate(
                AND2, [reg(a_bus[i], delay), reg(b_bus[j], delay)], "pp"
            )
            row_bits[i + j] = (pp, 0)
        carry: Optional[Tuple[int, int]] = None
        for pos in range(width):
            terms = [
                t
                for t in (
                    reg(total[pos], 1 if pipeline_rows else 0)
                    if total[pos] is not None
                    else None,
                    row_bits[pos],
                    carry,
                )
                if t is not None
            ]
            carry = None
            if not terms:
                continue
            if len(terms) == 1:
                value = terms[0]
            elif len(terms) == 2:
                value = (b.gate(XOR2, terms, "s2"), 0)
                carry = (b.gate(AND2, terms, "c2"), 0)
            else:
                x01 = b.gate(XOR2, terms[:2], "x01")
                value = (b.gate(XOR2, [(x01, 0), terms[2]], "s3"), 0)
                g01 = b.gate(AND2, terms[:2], "g01")
                g2 = b.gate(AND2, [(x01, 0), terms[2]], "g2")
                carry = (b.gate(OR2, [(g01, 0), (g2, 0)], "c3"), 0)
            total[pos] = value
        if carry is not None:  # pragma: no cover - absorbed by width bound
            raise AssertionError("carry escaped the product width")
    # Materialize the product bits as named gates (buffers).
    out: List[int] = []
    for pos in range(width):
        pin = total[pos] if total[pos] is not None else None
        if pin is None:
            zero = circuit.add_gate(
                f"{prefix}.p{pos}", TruthTable.const(0, False), []
            )
            out.append(zero)
        else:
            out.append(b.gate(OR2, [pin, pin], f"p{pos}"))
    return out


def fir_taps(
    circuit: SeqCircuit,
    prefix: str,
    source: Tuple[int, int],
    n_taps: int,
    coeffs: Sequence[Tuple[int, int]],
) -> int:
    """Feed-forward tap network: XOR-accumulate gated delayed samples."""
    if len(coeffs) != n_taps:
        raise ValueError("coefficient bus width mismatch")
    b = _Builder(circuit, prefix)
    src, w0 = source
    acc: Optional[Tuple[int, int]] = None
    for t in range(n_taps):
        sample = (src, w0 + t)  # the input delayed t cycles
        gated = b.gate(AND2, [sample, coeffs[t]], "tap")
        acc = (gated, 0) if acc is None else (
            b.gate(XOR2, [acc, (gated, 0)], "acc"),
            0,
        )
    return acc[0]


def datapath_circuit(
    name: str,
    width: int,
    seed: int,
    n_blocks: int = 3,
) -> SeqCircuit:
    """A seeded composition of datapath blocks around one input bus.

    Gate count grows roughly as ``n_blocks * 8 * width``; loops come from
    the accumulator carry chains, the counters and the LFSRs, giving the
    mix of loop lengths the ISCAS'89 circuits exhibit.
    """
    rng = default_rng(seed)
    c = SeqCircuit(name)
    bus = [c.add_pi(f"d{i}") for i in range(width)]
    en = c.add_pi("en")
    outputs: List[Tuple[str, int]] = []

    prev_bus: List[Tuple[int, int]] = [(x, 0) for x in bus]
    for blk in range(n_blocks):
        kind = ["acc", "lfsr", "cnt", "fir"][int(rng.integers(0, 4))]
        prefix = f"b{blk}_{kind}"
        if kind == "acc":
            sums = accumulator(c, prefix, width, prev_bus)
            prev_bus = [(s, 1) for s in sums]
            outputs.append((f"{prefix}.msb", sums[-1]))
        elif kind == "lfsr":
            taps = sorted(
                set(int(t) for t in rng.choice(width, size=max(2, width // 4), replace=False))
            )
            stages = lfsr(c, prefix, width, taps, (en, 0))
            prev_bus = [
                (
                    c.add_gate(
                        f"{prefix}.mix{i}", XOR2, [prev_bus[i], (stages[i], 1)]
                    ),
                    0,
                )
                for i in range(width)
            ]
            outputs.append((f"{prefix}.tail", stages[-1]))
        elif kind == "cnt":
            bits = ripple_counter(c, prefix, max(2, width // 2), (en, 0))
            gate_sig = bits[-1]
            prev_bus = [
                (
                    c.add_gate(
                        f"{prefix}.gate{i}", AND2, [prev_bus[i], (gate_sig, 1)]
                    ),
                    0,
                )
                for i in range(width)
            ]
            outputs.append((f"{prefix}.ovf", bits[-1]))
        else:  # fir
            n_taps = min(6, width)
            out = fir_taps(c, prefix, prev_bus[0], n_taps, prev_bus[:n_taps])
            outputs.append((f"{prefix}.y", out))
    for j, (_label, node) in enumerate(outputs):
        c.add_po(f"po{j}", node, 0)
    c.check()
    return c
