"""The Table-1 benchmark suite: 12 MCNC-FSM-like + 4 ISCAS'89-like circuits.

The paper evaluates on 12 MCNC FSM benchmarks and 4 ISCAS'89 circuits
processed by SIS + dmig.  Those netlists are not redistributable, so each
suite entry is a *synthetic stand-in generated with the named benchmark's
published state/input/output profile* (FSMs; inputs/outputs capped at
8/19 to keep the structural synthesis tractable — see ``DESIGN.md``
Section 3) or a datapath composition sized to a comparable gate/FF count
(ISCAS-like entries).  All generation is seeded and deterministic, so
every run of the benchmark harness sees the same circuits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.bench.datapath import datapath_circuit
from repro.bench.fsm import fsm_to_circuit, random_fsm
from repro.netlist.graph import SeqCircuit


@dataclass(frozen=True)
class SuiteEntry:
    """One benchmark of the Table-1 suite."""

    name: str
    kind: str  # "fsm" or "datapath"
    params: tuple
    description: str

    def build(self) -> SeqCircuit:
        if self.kind == "fsm":
            states, inputs, outputs, seed, depth = self.params
            fsm = random_fsm(
                self.name, states, inputs, outputs, seed=seed, split_depth=depth
            )
            return fsm_to_circuit(fsm)
        if self.kind == "datapath":
            width, blocks, seed = self.params
            return datapath_circuit(self.name, width, seed=seed, n_blocks=blocks)
        raise ValueError(f"unknown suite kind {self.kind!r}")


#: The 12 MCNC-FSM-like entries carry the published benchmark profiles
#: (states, inputs, outputs, seed, guard split depth) — large I/O counts
#: capped, and the two largest controllers use a shallower transition
#: split to bound the synthesized gate count; the 4 ISCAS-like entries
#: are (bus width, block count, seed) datapath mixes.
SUITE: List[SuiteEntry] = [
    SuiteEntry("bbara", "fsm", (10, 4, 2, 101, 4), "MCNC bbara profile: 10 states"),
    SuiteEntry("bbsse", "fsm", (16, 7, 7, 102, 4), "MCNC bbsse profile: 16 states"),
    SuiteEntry("cse", "fsm", (16, 7, 7, 103, 4), "MCNC cse profile: 16 states"),
    SuiteEntry("dk16", "fsm", (27, 2, 3, 104, 4), "MCNC dk16 profile: 27 states"),
    SuiteEntry("keyb", "fsm", (19, 7, 2, 105, 4), "MCNC keyb profile: 19 states"),
    SuiteEntry("kirkman", "fsm", (16, 8, 6, 106, 4), "MCNC kirkman (inputs capped at 8)"),
    SuiteEntry("planet", "fsm", (48, 7, 19, 107, 3), "MCNC planet profile: 48 states"),
    SuiteEntry("s1", "fsm", (20, 8, 6, 108, 4), "MCNC s1 profile: 20 states"),
    SuiteEntry("sand", "fsm", (32, 8, 9, 109, 4), "MCNC sand (inputs capped at 8)"),
    SuiteEntry("scf", "fsm", (121, 8, 16, 110, 3), "MCNC scf (I/O capped at 8/16)"),
    SuiteEntry("sse", "fsm", (16, 7, 7, 111, 4), "MCNC sse profile: 16 states"),
    SuiteEntry("styr", "fsm", (30, 8, 10, 112, 4), "MCNC styr (inputs capped at 8)"),
    SuiteEntry("s838", "datapath", (16, 4, 201), "ISCAS s838-like datapath"),
    SuiteEntry("s953", "datapath", (20, 5, 202), "ISCAS s953-like datapath"),
    SuiteEntry("s1423", "datapath", (24, 6, 203), "ISCAS s1423-like datapath"),
    SuiteEntry("s5378", "datapath", (32, 8, 204), "ISCAS s5378-like datapath"),
]

_BY_NAME: Dict[str, SuiteEntry] = {e.name: e for e in SUITE}


def entry(name: str) -> SuiteEntry:
    """Look up one suite entry; unknown names list the valid ones."""
    try:
        return _BY_NAME[name]
    except KeyError:
        valid = ", ".join(e.name for e in SUITE)
        raise ValueError(
            f"unknown benchmark name {name!r}; valid suite names: {valid}"
        ) from None


def build(name: str) -> SeqCircuit:
    """Build one suite circuit by benchmark name."""
    return entry(name).build()


def build_suite(names: Optional[Iterable[str]] = None) -> Dict[str, SeqCircuit]:
    """Build the full suite (or a named subset), deterministically."""
    selected = list(names) if names is not None else [e.name for e in SUITE]
    return {name: build(name) for name in selected}


def quick_subset() -> List[str]:
    """The smaller circuits, used by CI-speed tests and examples."""
    return ["bbara", "bbsse", "dk16", "keyb", "s838"]


#: Algorithms the JSON suite report knows how to run.  ``flowsyn-s`` has
#: no phi search, so it ignores the worker count.
REPORT_ALGORITHMS = ("flowsyn-s", "turbomap", "turbosyn")


#: Signature of the per-cell progress callback of
#: :func:`run_suite_report`:
#: ``on_cell(circuit, algorithm, run, error, elapsed, cached)`` — exactly
#: one of ``run`` (the serialized mapper run) and ``error`` (the
#: structured error entry) is non-``None``; ``cached`` marks cells
#: skipped because a resumed report already contained them.
CellCallback = Callable[
    [str, str, Optional[dict], Optional[dict], float, bool], None
]


def _completed_cells(report: Optional[dict]) -> "tuple[list, set]":
    """The runs of a prior (possibly partial) report, and their keys."""
    if not report:
        return [], set()
    runs = [dict(run) for run in report.get("runs", [])]
    return runs, {(r.get("circuit"), r.get("algorithm")) for r in runs}


def run_suite_report(
    names: Optional[Iterable[str]] = None,
    k: int = 5,
    algorithms: Iterable[str] = REPORT_ALGORITHMS,
    workers: int = 1,
    check: bool = True,
    timeout: Optional[float] = None,
    probe_timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    resume: Optional[dict] = None,
    on_cell: Optional[CellCallback] = None,
    engine: str = "worklist",
    warm_start: bool = True,
    max_copies: Optional[int] = None,
    flow: str = "dinic",
    kernel: str = "compiled",
    cache: Optional[object] = None,
) -> dict:
    """Run mappers over suite circuits and return a JSON-able perf report.

    This is the machine-readable twin of the CLI ``suite`` table (and the
    producer of ``benchmarks/baseline.json``): one
    :func:`repro.perf.report.mapper_run` entry per (circuit, algorithm),
    wrapped in a schema-versioned envelope.  Used by the CI smoke job,
    which gates the result with :mod:`repro.perf.check`.

    Resilience: every (circuit, algorithm) cell runs inside a fault
    boundary — an exception is recorded as a structured entry in the
    report's ``errors`` list instead of aborting the sweep.  ``timeout``
    and ``probe_timeout`` build a fresh per-cell
    :class:`~repro.resilience.budget.Budget` (expired cells degrade to
    their best-known answer).  ``checkpoint`` atomically rewrites the
    report-so-far after every cell, so an interrupted sweep (including
    Ctrl-C, which re-raises after the flush) loses at most the cell in
    flight.  ``resume`` takes a previously written report (as returned
    by :func:`repro.perf.report.load_report`): its successful runs are
    kept verbatim and skipped; errored or missing cells are re-run.
    ``engine``, ``warm_start``, ``max_copies``, ``flow`` and ``kernel``
    configure the label engine of the phi-searching mappers (TurboMap /
    TurboSYN); they are recorded in the report envelope so the
    counter-based regression gate (:mod:`repro.perf.check`) only
    compares like with like.  ``cache`` (a persistent
    :class:`repro.cache.OutcomeCache`) warms the phi-searching mappers
    across runs — bit-identical results, and a snapshot of the cache's
    hit/miss counters is attached to the report envelope.
    """
    import time

    from repro.core.expanded import DEFAULT_MAX_COPIES
    from repro.core.flowsyn_s import flowsyn_s
    from repro.core.turbomap import turbomap
    from repro.core.turbosyn import turbosyn
    from repro.perf import report as perf_report
    from repro.resilience.budget import Budget
    from repro.resilience.faultinject import fault_point

    copies = DEFAULT_MAX_COPIES if max_copies is None else max_copies
    runners = {
        "flowsyn-s": lambda c, b: flowsyn_s(c, k, check=check),
        "turbomap": lambda c, b: turbomap(
            c, k, workers=workers, check=check, budget=b,
            engine=engine, warm_start=warm_start, max_copies=copies,
            flow=flow, kernel=kernel, cache=cache,
        ),
        "turbosyn": lambda c, b: turbosyn(
            c, k, workers=workers, check=check, budget=b,
            engine=engine, warm_start=warm_start, max_copies=copies,
            flow=flow, kernel=kernel, cache=cache,
        ),
    }
    selected_algos = list(algorithms)
    unknown = [a for a in selected_algos if a not in runners]
    if unknown:
        raise ValueError(f"unknown report algorithm(s): {unknown}")
    selected_names = (
        list(names) if names is not None else [e.name for e in SUITE]
    )
    runs, done = _completed_cells(resume)
    errors: List[dict] = []

    def cache_snapshot() -> Optional[dict]:
        return cache.stats() if cache is not None else None

    def flush(path: Optional[str]) -> None:
        if path is not None:
            perf_report.write_report(
                perf_report.suite_report(
                    runs, k=k, workers=workers, errors=errors,
                    engine=engine, warm_start=warm_start,
                    flow=flow, kernel=kernel, cache=cache_snapshot(),
                ),
                path,
            )

    for name in selected_names:
        entry(name)  # unknown names fail fast, before hours of mapping
    for name in selected_names:
        try:
            circuit = build(name)
        except Exception as exc:  # pragma: no cover - defensive boundary
            for algo in selected_algos:
                if (name, algo) in done:
                    continue
                err = perf_report.error_entry(name, algo, exc, stage="build")
                errors.append(err)
                if on_cell is not None:
                    on_cell(name, algo, None, err, 0.0, False)
            flush(checkpoint)
            continue
        for algo in selected_algos:
            if (name, algo) in done:
                if on_cell is not None:
                    cached = next(
                        r for r in runs
                        if (r.get("circuit"), r.get("algorithm")) == (name, algo)
                    )
                    on_cell(name, algo, cached, None, 0.0, True)
                continue
            budget = None
            if timeout is not None or probe_timeout is not None:
                budget = Budget(deadline=timeout, probe_timeout=probe_timeout)
            t0 = time.perf_counter()
            try:
                fault_point("suite-cell", tag=f"{name}:{algo}")
                result = runners[algo](circuit, budget)
                seconds = time.perf_counter() - t0
                run = perf_report.mapper_run(result, circuit, seconds=seconds)
                runs.append(run)
                if on_cell is not None:
                    on_cell(name, algo, run, None, seconds, False)
            except KeyboardInterrupt:
                flush(checkpoint)  # keep completed cells; then bubble up
                raise
            except Exception as exc:
                seconds = time.perf_counter() - t0
                err = perf_report.error_entry(
                    name, algo, exc, stage="map", elapsed=seconds
                )
                errors.append(err)
                if on_cell is not None:
                    on_cell(name, algo, None, err, seconds, False)
            flush(checkpoint)
    report = perf_report.suite_report(
        runs, k=k, workers=workers, errors=errors,
        engine=engine, warm_start=warm_start,
        flow=flow, kernel=kernel, cache=cache_snapshot(),
    )
    flush(checkpoint)
    return report


def large_circuit(scale: int = 4, seed: int = 999) -> SeqCircuit:
    """A scaling-study circuit: several suite-sized blocks glued together.

    ``scale`` multiplies the block count; ``scale=4`` lands in the few-
    thousand-gate range used by ``benchmarks/bench_scaling.py`` (the
    paper's 10^4-gate headline scaled to interpreted-Python throughput —
    see ``DESIGN.md`` Section 3).
    """
    return datapath_circuit("scalex", width=8 * scale, seed=seed, n_blocks=3 * scale)
