"""Cone extraction and cone-function evaluation on combinational logic.

A *cut* ``(X, X-bar)`` for a node ``v`` separates ``v`` from the inputs of
its fan-in cone; the nodes between the cut and ``v`` (the ``X-bar`` side)
form the logic a single LUT must realize.  This module collects that logic
and composes its exact Boolean function over the cut nodes, which is what
FlowMap's mapping generation and FlowSYN's resynthesis consume.

Only zero-weight (combinational) edges are traversed; callers working on
sequential circuits cut at registers first or use the expanded-circuit
machinery in :mod:`repro.core.expanded`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.boolfn.truthtable import TruthTable, eval_gate_columns
from repro.netlist.graph import NodeKind, SeqCircuit


def fanin_cone(circuit: SeqCircuit, root: int) -> Set[int]:
    """All nodes reaching ``root`` through zero-weight edges, incl. ``root``."""
    seen = {root}
    stack = [root]
    while stack:
        v = stack.pop()
        for pin in circuit.fanins(v):
            if pin.weight == 0 and pin.src not in seen:
                seen.add(pin.src)
                stack.append(pin.src)
    return seen


def cluster_between(
    circuit: SeqCircuit, root: int, cut: Iterable[int]
) -> List[int]:
    """Nodes between ``cut`` and ``root`` in topological order.

    Walks fanins from ``root`` stopping at cut nodes; the returned list
    contains the cluster's gates (cut nodes excluded, ``root`` included)
    ordered so that every gate appears after its in-cluster fanins.
    Raises ``ValueError`` when the walk escapes past a PI that is not in
    the cut (the cut does not cover the cone).
    """
    cut_set = set(cut)
    if root in cut_set:
        raise ValueError("root cannot be part of its own cut")
    order: List[int] = []
    state: Dict[int, int] = {}  # 0 visiting, 1 done

    stack: List[Tuple[int, bool]] = [(root, False)]
    while stack:
        v, processed = stack.pop()
        if processed:
            state[v] = 1
            order.append(v)
            continue
        if state.get(v) == 1:
            continue
        state[v] = 0
        stack.append((v, True))
        for pin in circuit.fanins(v):
            if pin.weight != 0:
                raise ValueError(
                    "cluster crosses a registered edge; cut must stop at it"
                )
            src = pin.src
            if src in cut_set or state.get(src) == 1:
                continue
            if circuit.kind(src) is NodeKind.PI:
                raise ValueError(
                    f"cut does not cover PI {circuit.name_of(src)!r}"
                )
            stack.append((src, False))
    return order


def cone_function(
    circuit: SeqCircuit, root: int, cut: Sequence[int]
) -> TruthTable:
    """Exact function of ``root`` over the ordered ``cut`` nodes.

    ``cut`` must cover the fan-in cone of ``root``; variable ``i`` of the
    result corresponds to ``cut[i]``.  Evaluation is bit-parallel over all
    ``2**len(cut)`` assignments, packed as Python ints (bit ``a`` of a
    node's column is its value on assignment ``a``).
    """
    cut = list(cut)
    m = len(cut)
    if m > 20:
        raise ValueError(f"cut of {m} nodes is too wide for dense evaluation")
    values: Dict[int, int] = {}
    for i, u in enumerate(cut):
        values[u] = TruthTable.var(i, m).bits if m else 0
    for v in cluster_between(circuit, root, cut):
        node = circuit.node(v)
        if node.kind is not NodeKind.GATE:
            raise ValueError(f"cluster contains non-gate {node.name!r}")
        cols = [values[pin.src] for pin in node.fanins]
        values[v] = eval_gate_columns(node.func, cols, m)
    return TruthTable(m, values[root])
