"""Gate decomposition: make a circuit K-bounded.

The paper assumes K-bounded input networks and points to balanced tree
decomposition [2], DMIG [4] or DOGMA [9] for wider gates.  This module is
that preprocessing stand-in: every gate with more than ``k`` fanins is
replaced by a tree of at-most-``k``-input gates.

Strategy per wide gate:

1. try the Roth-Karp LUT-tree synthesizer (bound-set grouping keeps trees
   balanced, mirroring the depth-aware intent of DMIG);
2. fall back to Shannon cofactoring (a multiplexer tree), which always
   succeeds and, for ``k = 2``, lowers the mux into AND/OR pairs.

Edge weights on the wide gate's fanins are preserved on the leaves of the
replacement tree, so sequential behaviour is untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.boolfn.decompose import Lut, LutTree, synthesize_lut_tree
from repro.boolfn.truthtable import TruthTable
from repro.netlist.graph import NodeKind, SeqCircuit

#: Deadline passed to the tree synthesizer: effectively unconstrained.
_LOOSE_DEADLINE = 1 << 20

_MUX3 = TruthTable.from_function(3, lambda s, a, b: b if s else a)
_AND_POS = TruthTable.from_function(2, lambda s, b: s and b)
_AND_NEG = TruthTable.from_function(2, lambda s, a: (not s) and a)
_OR2 = TruthTable.from_function(2, lambda a, b: a or b)


def decompose_gate_function(func: TruthTable, k: int) -> LutTree:
    """A LUT tree with fanin bound ``k`` realizing ``func`` (always succeeds)."""
    if k < 2:
        raise ValueError("k must be at least 2")
    tree = synthesize_lut_tree(func, [0] * func.n, k, _LOOSE_DEADLINE)
    if tree is not None:
        return tree
    return _shannon_tree(func, k)


def _shannon_tree(func: TruthTable, k: int) -> LutTree:
    """Multiplexer-tree decomposition by Shannon cofactoring.

    Splits on the highest essential variable until the residual support
    fits ``k``.  For ``k >= 3`` the select structure is a 3-input mux LUT;
    for ``k == 2`` the mux is lowered into three 2-input gates.
    """
    tree = LutTree(num_leaves=func.n)

    def emit(f: TruthTable, inputs: Tuple[int, ...]) -> int:
        tree.luts.append(Lut(f, inputs))
        return -len(tree.luts)

    def build(current: TruthTable, leaf_map: List[int]) -> int:
        shrunk, sup = current.shrink_to_support()
        leaves = [leaf_map[i] for i in sup]
        if shrunk.n <= k:
            return emit(shrunk, tuple(leaves))
        split = shrunk.n - 1
        lo = build(shrunk.cofactor(split, 0), leaves[:split])
        hi = build(shrunk.cofactor(split, 1), leaves[:split])
        sel = leaves[split]
        if k >= 3:
            return emit(_MUX3, (sel, lo, hi))
        t1 = emit(_AND_POS, (sel, hi))
        t2 = emit(_AND_NEG, (sel, lo))
        return emit(_OR2, (t1, t2))

    build(func, list(range(func.n)))
    return tree


def k_bound_circuit(
    circuit: SeqCircuit, k: int, name: Optional[str] = None
) -> SeqCircuit:
    """Rebuild ``circuit`` with every gate limited to ``k`` fanins.

    Gates already within bound are copied verbatim; wider gates become
    trees of new gates named ``<gate>~d<i>``.  Two-phase construction
    keeps registered feedback intact.
    """
    out = SeqCircuit(name or circuit.name)
    new_id: Dict[int, int] = {}
    trees: Dict[int, Tuple[LutTree, List[int]]] = {}

    # Phase 1: create every node; leave fanins unwired.
    for v in circuit.node_ids():
        node = circuit.node(v)
        if node.kind is NodeKind.PI:
            new_id[v] = out.add_pi(node.name)
        elif node.kind is NodeKind.GATE:
            if len(node.fanins) <= k:
                new_id[v] = out.add_gate_placeholder(node.name, node.func)
            else:
                tree = decompose_gate_function(node.func, k)
                refs = []
                for j, lut in enumerate(tree.luts):
                    is_root = j == len(tree.luts) - 1
                    gate_name = node.name if is_root else f"{node.name}~d{j}"
                    refs.append(out.add_gate_placeholder(gate_name, lut.func))
                trees[v] = (tree, refs)
                new_id[v] = refs[-1]

    # Phase 2: wire fanins.
    for v in circuit.node_ids():
        node = circuit.node(v)
        if node.kind is NodeKind.PI:
            continue
        if node.kind is NodeKind.PO:
            pin = node.fanins[0]
            out.add_po(node.name, new_id[pin.src], pin.weight)
            continue
        if v not in trees:
            out.set_fanins(
                new_id[v], [(new_id[p.src], p.weight) for p in node.fanins]
            )
            continue
        tree, refs = trees[v]
        for j, lut in enumerate(tree.luts):
            pins = []
            for ref in lut.inputs:
                if ref >= 0:
                    pin = node.fanins[ref]
                    pins.append((new_id[pin.src], pin.weight))
                else:
                    pins.append((refs[-1 - ref], 0))
            out.set_fanins(refs[j], pins)
    out.check()
    return out


__all__ = ["decompose_gate_function", "k_bound_circuit"]
