"""Algebraic tree balancing (technology-independent preprocessing).

SIS-style flows rebalance associative gate chains (AND/OR/XOR) into
minimum-depth trees before mapping; it is the cheapest slice of what
Boolean resynthesis can do.  This module provides that step for the
retiming-graph representation:

* maximal *chains* of same-function associative 2-input gates connected
  by zero-weight, single-fanout edges are collected into one n-ary
  operation;
* each is re-emitted as a Huffman-style tree over optional leaf arrival
  estimates, which minimizes the local depth contribution;
* registered edges, fanout points, POs and non-associative gates are
  barriers — sequential behaviour is untouched.

``benchmarks/bench_balance.py`` uses it for the ablation "TurboSYN vs
balance + TurboMap": balancing recovers part of the resynthesis gain on
skewed networks, but cannot move logic *across registers* — only the
sequential decomposition can (that gap is the paper's contribution).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.boolfn.truthtable import TruthTable
from repro.netlist.graph import NodeKind, Pin, SeqCircuit

_AND2 = TruthTable.from_function(2, lambda a, b: a and b)
_OR2 = TruthTable.from_function(2, lambda a, b: a or b)
_XOR2 = TruthTable.from_function(2, lambda a, b: a != b)

#: Associative, commutative 2-input functions eligible for balancing.
ASSOCIATIVE = (_AND2, _OR2, _XOR2)


def _collect_chain(
    circuit: SeqCircuit, root: int, func: TruthTable
) -> Optional[Tuple[List[Pin], Set[int]]]:
    """Leaves and interior gates of the maximal same-function tree.

    A fanin is absorbed into the chain when it is a gate with the same
    function, read through a zero-weight edge, and has no other reader;
    anything else is a leaf (keeping its register count).  Returns
    ``None`` when nothing was absorbed.
    """
    leaves: List[Pin] = []
    interior: Set[int] = set()
    stack = list(circuit.fanins(root))
    while stack:
        pin = stack.pop()
        node = circuit.node(pin.src)
        if (
            pin.weight == 0
            and node.kind is NodeKind.GATE
            and node.func == func
            and len(circuit.fanouts(pin.src)) == 1
            and pin.src != root
        ):
            interior.add(pin.src)
            stack.extend(node.fanins)
        else:
            leaves.append(pin)
    if not interior:
        return None
    return leaves, interior


def balance_circuit(
    circuit: SeqCircuit,
    depths: Optional[Dict[int, int]] = None,
    name: Optional[str] = None,
) -> SeqCircuit:
    """Rebuild associative chains as balanced (Huffman) trees.

    ``depths`` optionally provides leaf arrival estimates (leaves with
    larger values end up closer to the root); by default every leaf
    weighs equally.  Returns a new circuit with identical PI/PO names and
    behaviour.
    """
    chains: Dict[int, List[Pin]] = {}
    absorbed: Set[int] = set()
    for v in circuit.gates:
        if v in absorbed:
            continue
        func = circuit.func(v)
        if func not in ASSOCIATIVE:
            continue
        found = _collect_chain(circuit, v, func)
        if found is None:
            continue
        leaves, interior = found
        chains[v] = leaves
        absorbed |= interior
    # A chain root absorbed by a *later* root would corrupt the rebuild;
    # the single-fanout requirement plus gate iteration order prevent it,
    # but drop any chain whose root was absorbed anyway (defensive).
    for v in list(chains):
        if v in absorbed:
            del chains[v]

    out = SeqCircuit(name or circuit.name)
    new_id: Dict[int, int] = {}
    for v in circuit.node_ids():
        node = circuit.node(v)
        if node.kind is NodeKind.PI:
            new_id[v] = out.add_pi(node.name)
        elif node.kind is NodeKind.GATE and v not in absorbed:
            new_id[v] = out.add_gate_placeholder(node.name, node.func)

    counter = [0]

    def wire_tree(v: int, leaves: List[Pin], func: TruthTable) -> None:
        """Huffman tree over the leaves; the root reuses node ``v``."""
        heap: List[Tuple[int, int, Tuple[int, int]]] = []
        for tie, pin in enumerate(leaves):
            depth = (depths or {}).get(pin.src, 0)
            heap.append((depth, tie, (new_id[pin.src], pin.weight)))
        heapq.heapify(heap)
        tie = len(leaves)
        while len(heap) > 2:
            d1, _t1, a = heapq.heappop(heap)
            d2, _t2, b = heapq.heappop(heap)
            counter[0] += 1
            g = out.add_gate(
                f"{circuit.name_of(v)}~b{counter[0]}", func, [a, b]
            )
            heapq.heappush(heap, (max(d1, d2) + 1, tie, (g, 0)))
            tie += 1
        pins = [item[2] for item in sorted(heap)]
        out.set_fanins(new_id[v], pins)

    for v in circuit.node_ids():
        node = circuit.node(v)
        if node.kind is NodeKind.PO:
            pin = node.fanins[0]
            out.add_po(node.name, new_id[pin.src], pin.weight)
        elif node.kind is NodeKind.GATE and v not in absorbed:
            if v in chains:
                wire_tree(v, chains[v], node.func)
            else:
                out.set_fanins(
                    new_id[v], [(new_id[p.src], p.weight) for p in node.fanins]
                )
    out.check()
    return out
