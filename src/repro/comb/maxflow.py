"""Unit-capacity max-flow for K-feasible cut computation.

Both FlowMap [6] and the TurboMap/TurboSYN label computation [11] decide
"is there a cut with at most K nodes?" by a max-flow computation on a
node-split network: every candidate cut node becomes an internal edge of
capacity 1, all other edges get infinite capacity, and a K-feasible cut
exists iff the max flow is at most K.  Flows never need to exceed ``K+1``,
so BFS augmentation (Edmonds-Karp) with an early cutoff is exact and fast:
``O((K+1) * E)`` per query.

:class:`FlowNetwork` is a minimal residual-graph implementation;
:func:`node_split_network` builds the standard construction from a DAG
description and :func:`min_cut_nodes` recovers the cut-node set after a
bounded max-flow run.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

#: Effectively infinite capacity for non-cut edges.
INF = 1 << 30


class FlowNetwork:
    """A residual flow network with integer capacities."""

    def __init__(self) -> None:
        # Edge arrays: to[i], cap[i]; edge i^1 is the reverse of edge i.
        self._to: List[int] = []
        self._cap: List[int] = []
        self._adj: List[List[int]] = []
        # Recycled per-node adjacency lists (see reset): cleared lists are
        # cheaper to hand back out than freshly allocated ones.
        self._adj_pool: List[List[int]] = []
        # BFS parent-edge scratch, grown on demand and reused across
        # max_flow calls (one allocation per network, not per query).
        self._parent_edge: List[int] = []

    def reset(self) -> None:
        """Empty the network in place, keeping allocations for reuse.

        Per-node adjacency lists are cleared and parked in a pool that
        :meth:`add_node` draws from, so a solver running thousands of
        flow queries recycles one arena instead of reallocating a fresh
        network per query.
        """
        self._to.clear()
        self._cap.clear()
        while self._adj:
            lst = self._adj.pop()
            lst.clear()
            self._adj_pool.append(lst)

    def add_node(self) -> int:
        self._adj.append(self._adj_pool.pop() if self._adj_pool else [])
        return len(self._adj) - 1

    def add_nodes(self, count: int) -> range:
        start = len(self._adj)
        for _ in range(count):
            self._adj.append(self._adj_pool.pop() if self._adj_pool else [])
        return range(start, start + count)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    def add_edge(self, u: int, v: int, cap: int) -> int:
        """Add a directed edge; returns its index (reverse is index+1)."""
        if not (0 <= u < len(self._adj) and 0 <= v < len(self._adj)):
            raise ValueError("edge endpoint out of range")
        if cap < 0:
            raise ValueError("capacity must be non-negative")
        idx = len(self._to)
        self._to.extend((v, u))
        self._cap.extend((cap, 0))
        self._adj[u].append(idx)
        self._adj[v].append(idx + 1)
        return idx

    def edge_flow(self, idx: int) -> int:
        """Current flow on edge ``idx`` (capacity moved to its reverse)."""
        return self._cap[idx ^ 1]

    def max_flow(self, source: int, sink: int, limit: int) -> int:
        """Edmonds-Karp max-flow, stopping once the flow exceeds ``limit``.

        Returns ``min(true max flow, limit + 1)``: a return value of
        ``limit + 1`` means "more than limit", which is all the K-cut
        queries need to know.
        """
        if source == sink:
            raise ValueError("source equals sink")
        flow = 0
        parent_edge = self._parent_edge
        n = len(self._adj)
        while len(parent_edge) < n:
            parent_edge.append(-1)
        while flow <= limit:
            # BFS for an augmenting path.
            for i in range(n):
                parent_edge[i] = -1
            parent_edge[source] = -2
            queue = deque([source])
            found = False
            while queue and not found:
                u = queue.popleft()
                for idx in self._adj[u]:
                    v = self._to[idx]
                    if parent_edge[v] == -1 and self._cap[idx] > 0:
                        parent_edge[v] = idx
                        if v == sink:
                            found = True
                            break
                        queue.append(v)
            if not found:
                return flow
            # Augment by the bottleneck along the path (>= 1).
            bottleneck = INF
            v = sink
            while v != source:
                idx = parent_edge[v]
                bottleneck = min(bottleneck, self._cap[idx])
                v = self._to[idx ^ 1]
            v = sink
            while v != source:
                idx = parent_edge[v]
                self._cap[idx] -= bottleneck
                self._cap[idx ^ 1] += bottleneck
                v = self._to[idx ^ 1]
            flow += bottleneck
        return flow

    def residual_reachable(self, source: int) -> Set[int]:
        """Nodes reachable from ``source`` along positive-residual edges.

        After a completed max-flow run this is the source side of a
        minimum cut.
        """
        seen = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for idx in self._adj[u]:
                v = self._to[idx]
                if v not in seen and self._cap[idx] > 0:
                    seen.add(v)
                    queue.append(v)
        return seen


#: Valid ``flow=`` engines for :class:`SplitNetwork` and the label solver.
FLOWS = ("dinic", "ek")


class SplitNetwork:
    """A node-split flow network over an abstract DAG.

    Build with :func:`node_split_network`.  ``inp[x]``/``out[x]`` map each
    DAG node to its split pair; ``split_edge[x]`` is the capacity-1
    internal edge whose saturation marks ``x`` as a cut node.

    ``flow`` selects the max-flow engine backing the queries:
    ``"dinic"`` (level-graph phases with current-arc cursors,
    :class:`repro.kernel.dinic.DinicNetwork`) or ``"ek"`` (the
    Edmonds-Karp :class:`FlowNetwork`).  Both satisfy the same bounded
    contract and — because the source-side residual min-cut is unique
    for any max flow — report identical cut-node sets.
    """

    def __init__(self, flow: str = "dinic") -> None:
        if flow == "dinic":
            # Local import: repro.kernel imports back into repro.core,
            # which imports this module.
            from repro.kernel.dinic import DinicNetwork

            self.net: FlowNetwork = DinicNetwork()  # API-compatible
        elif flow == "ek":
            self.net = FlowNetwork()
        else:
            raise ValueError(
                f"unknown flow engine {flow!r}; valid engines: "
                + ", ".join(FLOWS)
            )
        self.flow = flow
        self.source = self.net.add_node()
        self.sink = self.net.add_node()
        self.inp: Dict[object, int] = {}
        self.out: Dict[object, int] = {}
        self.split_edge: Dict[object, int] = {}

    def reset(self) -> None:
        """Empty the network in place for reuse by the next cut query."""
        self.net.reset()
        self.source = self.net.add_node()
        self.sink = self.net.add_node()
        self.inp.clear()
        self.out.clear()
        self.split_edge.clear()

    def add_dag_node(self, x: object, cuttable: bool = True) -> None:
        """Register DAG node ``x``; ``cuttable`` nodes get a unit split edge."""
        if x in self.inp:
            raise ValueError(f"duplicate DAG node {x!r}")
        a = self.net.add_node()
        b = self.net.add_node()
        self.inp[x] = a
        self.out[x] = b
        self.split_edge[x] = self.net.add_edge(a, b, 1 if cuttable else INF)

    def add_dag_edge(self, x: object, y: object) -> None:
        """Infinite-capacity edge from DAG node ``x`` to DAG node ``y``."""
        self.net.add_edge(self.out[x], self.inp[y], INF)

    def attach_source(self, x: object) -> None:
        """Collapse DAG node ``x`` into the source side (feeds its input)."""
        self.net.add_edge(self.source, self.inp[x], INF)

    def attach_sink(self, x: object) -> None:
        """Collapse DAG node ``x`` into the sink side.

        Connects the node's *input* half to the sink so that the node's
        own split edge can never bottleneck or be reported as a cut: a
        collapsed node is inside the LUT by definition.
        """
        self.net.add_edge(self.inp[x], self.sink, INF)

    def max_flow(self, limit: int) -> int:
        return self.net.max_flow(self.source, self.sink, limit)

    def drain_counters(self) -> Tuple[int, int]:
        """Per-query ``(phases, arcs_advanced)`` of a Dinic backend.

        The Edmonds-Karp backend has no level-graph phases; it reports
        ``(0, 0)`` so the telemetry counters stay engine-comparable.
        """
        drain = getattr(self.net, "drain_counters", None)
        if drain is None:
            return (0, 0)
        return drain()

    def cut_nodes(self) -> List[object]:
        """Cut-node set after :meth:`max_flow` (saturated split edges).

        A DAG node is in the cut iff its input half is reachable from the
        source in the residual graph but its output half is not.
        """
        reach = self.net.residual_reachable(self.source)
        cut = []
        for x, a in self.inp.items():
            if a in reach and self.out[x] not in reach:
                cut.append(x)
        return cut

    def source_side(self) -> Set[object]:
        """DAG nodes whose *output* half is on the source side of the cut."""
        reach = self.net.residual_reachable(self.source)
        return {x for x, b in self.out.items() if b in reach}
