"""FlowMap: depth-optimal K-LUT technology mapping for combinational DAGs.

Implements Cong-Ding [6].  For every node ``v`` in topological order the
label ``l(v)`` — the minimum LUT depth of any mapping of the fan-in cone of
``v`` — is computed by one bounded max-flow query: with
``L = max(l(fanin))``, ``l(v) = L`` iff the cone has a K-feasible cut whose
cut nodes all have labels ``<= L - 1``, which holds iff the max flow
through the node-split cone network (nodes labelled ``L`` collapsed into
the sink) is at most ``K``; otherwise ``l(v) = L + 1``.  Mapping generation
walks the recorded cuts from the POs, realizing one LUT per needed node
with its exact cone function.

The returned mapping is depth-optimal; this module is both the
combinational baseline of the paper's FlowSYN-s flow and the substrate
FlowSYN builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.comb.cone import cone_function, fanin_cone
from repro.comb.maxflow import SplitNetwork
from repro.netlist.graph import NodeKind, SeqCircuit
from repro.netlist.validate import ensure_mappable


@dataclass
class CombMapping:
    """Result of a combinational mapping run."""

    mapped: SeqCircuit
    depth: int
    labels: Dict[int, int]
    #: per-gate chosen cut (LUT input nodes in the *subject* circuit)
    cuts: Dict[int, Tuple[int, ...]]

    @property
    def n_luts(self) -> int:
        return self.mapped.n_gates


def _check_combinational(circuit: SeqCircuit) -> None:
    for _src, _dst, weight in circuit.edges():
        if weight != 0:
            raise ValueError(
                "flowmap requires a combinational circuit; "
                "cut sequential circuits at their registers first"
            )


def compute_labels(
    circuit: SeqCircuit, k: int
) -> Tuple[Dict[int, int], Dict[int, Tuple[int, ...]]]:
    """FlowMap labels and height-minimal cuts for every gate.

    Returns ``(labels, cuts)``; PIs have label 0 and no cut.  ``cuts[v]``
    lists the LUT inputs realizing ``l(v)``.
    """
    _check_combinational(circuit)
    ensure_mappable(circuit, k)
    labels: Dict[int, int] = {}
    cuts: Dict[int, Tuple[int, ...]] = {}
    order = circuit.comb_topo_order()
    for v in order:
        kind = circuit.kind(v)
        if kind is NodeKind.PI:
            labels[v] = 0
            continue
        if kind is NodeKind.PO:
            labels[v] = labels[circuit.fanins(v)[0].src]
            continue
        fanins = circuit.fanins(v)
        if not fanins:  # constant generator: one LUT at depth 1
            labels[v] = 1
            cuts[v] = ()
            continue
        big_l = max(labels[p.src] for p in fanins)
        cut = _find_cut(circuit, v, labels, big_l, k)
        if cut is not None:
            labels[v] = big_l
            cuts[v] = cut
        else:
            labels[v] = big_l + 1
            cuts[v] = tuple(dict.fromkeys(p.src for p in fanins))
    return labels, cuts


def _find_cut(
    circuit: SeqCircuit,
    v: int,
    labels: Dict[int, int],
    big_l: int,
    k: int,
) -> Optional[Tuple[int, ...]]:
    """A K-feasible cut of height ``<= big_l - 1`` for ``v``, or ``None``."""
    cone = fanin_cone(circuit, v)
    net = SplitNetwork()
    sink_side = {u for u in cone if u == v or labels[u] == big_l}
    for u in cone:
        net.add_dag_node(u, cuttable=u not in sink_side)
    for u in cone:
        for pin in circuit.fanins(u):
            if pin.src in cone:
                net.add_dag_edge(pin.src, u)
        if circuit.kind(u) is NodeKind.PI:
            net.attach_source(u)
    for u in sink_side:
        net.attach_sink(u)
    if net.max_flow(k) > k:
        return None
    return tuple(sorted(net.cut_nodes()))


def generate_mapping(
    circuit: SeqCircuit,
    labels: Dict[int, int],
    cuts: Dict[int, Tuple[int, ...]],
    name: Optional[str] = None,
) -> SeqCircuit:
    """Materialize the LUT network selected by ``cuts``.

    Every needed gate becomes one LUT whose function is the exact cone
    function between its cut and itself; PIs pass through; POs reconnect
    to their drivers' LUTs.
    """
    needed: List[int] = []
    seen = set()
    for po in circuit.pos:
        src = circuit.fanins(po)[0].src
        if circuit.kind(src) is NodeKind.GATE and src not in seen:
            seen.add(src)
            needed.append(src)
    idx = 0
    while idx < len(needed):
        v = needed[idx]
        idx += 1
        for u in cuts[v]:
            if circuit.kind(u) is NodeKind.GATE and u not in seen:
                seen.add(u)
                needed.append(u)

    mapped = SeqCircuit(name or f"{circuit.name}_lut")
    new_id: Dict[int, int] = {}
    for pi in circuit.pis:
        new_id[pi] = mapped.add_pi(circuit.name_of(pi))
    # Create LUTs bottom-up: order needed gates by label then topo position.
    order_pos = {nid: i for i, nid in enumerate(circuit.comb_topo_order())}
    for v in sorted(needed, key=lambda nid: order_pos[nid]):
        cut = cuts[v]
        func = cone_function(circuit, v, list(cut))
        new_id[v] = mapped.add_gate(
            circuit.name_of(v), func, [(new_id[u], 0) for u in cut]
        )
    for po in circuit.pos:
        pin = circuit.fanins(po)[0]
        mapped.add_po(circuit.name_of(po), new_id[pin.src], pin.weight)
    mapped.check()
    return mapped


def flowmap(circuit: SeqCircuit, k: int = 5, name: Optional[str] = None) -> CombMapping:
    """Depth-optimal K-LUT mapping of a combinational circuit."""
    labels, cuts = compute_labels(circuit, k)
    mapped = generate_mapping(circuit, labels, cuts, name)
    return CombMapping(
        mapped=mapped,
        depth=mapped.clock_period(),
        labels=labels,
        cuts=cuts,
    )
