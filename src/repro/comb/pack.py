"""LUT packing for area recovery (mpack / flow-pack stand-in).

After mapping generation the paper runs ``mpack`` [4] and ``flow-pack``
[6] to reduce the LUT count.  This module provides the same
post-processing contract with two passes iterated to a fixed point:

* **duplicate sharing** — LUTs with identical functions and identical
  (source, weight) fanin lists are merged;
* **predecessor packing** — a LUT feeding exactly one other LUT through a
  zero-weight edge is absorbed into its consumer when the union of their
  inputs still fits ``k`` (the flow-pack move).

Both moves are behaviour-preserving by construction: sharing merges
syntactically identical nodes; absorption composes the exact functions
(property-tested in ``tests/comb/test_pack.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.boolfn.truthtable import TruthTable
from repro.netlist.graph import NodeKind, Pin, SeqCircuit


def pack_luts(circuit: SeqCircuit, k: int, name: Optional[str] = None) -> SeqCircuit:
    """Return an equivalent LUT network with fewer (or equal) LUTs."""
    current = circuit
    while True:
        shared = _share_duplicates(current)
        packed = _absorb_single_fanout(shared, k)
        if packed.n_gates == current.n_gates:
            if name is not None:
                packed = packed.copy(name)
            return packed
        current = packed


# ----------------------------------------------------------------------
# Duplicate sharing
# ----------------------------------------------------------------------
def _share_duplicates(circuit: SeqCircuit) -> SeqCircuit:
    """Merge gates computing the same function of the same sources.

    Keys are P-canonical (function + fanins canonicalized under the same
    input permutation, :mod:`repro.boolfn.npn`), so ``AND(a, b)`` and
    ``AND(b, a)`` — or any permuted LUT pair — share; functions too wide
    for canonical enumeration fall back to the syntactic key.
    """
    from repro.boolfn.npn import MAX_NPN_VARS, p_canonical_with_pins

    replacement: Dict[int, int] = {}
    canonical: Dict[Tuple, int] = {}
    changed = False
    for v in circuit.comb_topo_order():
        if circuit.kind(v) is not NodeKind.GATE:
            continue
        node = circuit.node(v)
        pins = tuple(
            (replacement.get(p.src, p.src), p.weight) for p in node.fanins
        )
        if node.func.n <= MAX_NPN_VARS:
            key = p_canonical_with_pins(node.func, pins)
        else:
            key = (node.func.bits, pins)
        if key in canonical:
            replacement[v] = canonical[key]
            changed = True
        else:
            canonical[key] = v
    if not changed:
        return circuit
    return _rebuild(circuit, drop=set(replacement), redirect=replacement)


def _rebuild(
    circuit: SeqCircuit, drop: set, redirect: Dict[int, int]
) -> SeqCircuit:
    """Copy ``circuit`` without the ``drop`` gates, rerouting their readers."""

    def target(nid: int) -> int:
        while nid in redirect:
            nid = redirect[nid]
        return nid

    out = SeqCircuit(circuit.name)
    new_id: Dict[int, int] = {}
    for nid in circuit.node_ids():
        node = circuit.node(nid)
        if node.kind is NodeKind.PI:
            new_id[nid] = out.add_pi(node.name)
        elif node.kind is NodeKind.GATE and nid not in drop:
            new_id[nid] = out.add_gate_placeholder(node.name, node.func)
    for nid in circuit.node_ids():
        node = circuit.node(nid)
        if node.kind is NodeKind.PO:
            pin = node.fanins[0]
            out.add_po(node.name, new_id[target(pin.src)], pin.weight)
        elif node.kind is NodeKind.GATE and nid not in drop:
            out.set_fanins(
                new_id[nid],
                [(new_id[target(p.src)], p.weight) for p in node.fanins],
            )
    out.check()
    return out


# ----------------------------------------------------------------------
# Predecessor absorption (flow-pack move)
# ----------------------------------------------------------------------
def _absorb_single_fanout(circuit: SeqCircuit, k: int) -> SeqCircuit:
    """Absorb single-fanout LUTs into their consumers where inputs fit."""
    funcs: Dict[int, TruthTable] = {}
    pins: Dict[int, List[Pin]] = {}
    for g in circuit.gates:
        funcs[g] = circuit.func(g)
        pins[g] = list(circuit.fanins(g))
    absorbed: set = set()

    for v in reversed(circuit.comb_topo_order()):
        if circuit.kind(v) is not NodeKind.GATE or v in absorbed:
            continue
        outs = circuit.fanouts(v)
        consumers = {dst for dst, _w in outs}
        if len(consumers) != 1:
            continue
        consumer = next(iter(consumers))
        if (
            any(w != 0 for _dst, w in outs)
            or consumer == v
            or circuit.kind(consumer) is not NodeKind.GATE
            or consumer in absorbed
        ):
            continue
        merged = _compose_into(funcs[consumer], pins[consumer], v, funcs[v], pins[v])
        if merged is None:
            continue
        new_func, new_pins = merged
        if len(new_pins) > k:
            continue
        funcs[consumer] = new_func
        pins[consumer] = new_pins
        absorbed.add(v)

    if not absorbed:
        return circuit
    out = SeqCircuit(circuit.name)
    new_id: Dict[int, int] = {}
    for nid in circuit.node_ids():
        node = circuit.node(nid)
        if node.kind is NodeKind.PI:
            new_id[nid] = out.add_pi(node.name)
        elif node.kind is NodeKind.GATE and nid not in absorbed:
            new_id[nid] = out.add_gate_placeholder(node.name, funcs[nid])
    for nid in circuit.node_ids():
        node = circuit.node(nid)
        if node.kind is NodeKind.PO:
            pin = node.fanins[0]
            out.add_po(node.name, new_id[pin.src], pin.weight)
        elif node.kind is NodeKind.GATE and nid not in absorbed:
            out.set_fanins(
                new_id[nid], [(new_id[p.src], p.weight) for p in pins[nid]]
            )
    out.check()
    return out


def _compose_into(
    consumer_func: TruthTable,
    consumer_pins: List[Pin],
    producer: int,
    producer_func: TruthTable,
    producer_pins: List[Pin],
) -> Optional[Tuple[TruthTable, List[Pin]]]:
    """Substitute the producer LUT into its consumer.

    Returns the merged ``(function, pins)`` with shared sources fused and
    non-essential inputs pruned, or ``None`` when the producer only feeds
    the consumer through registered pins (absorbing would retime it).
    """
    reads = [
        i
        for i, p in enumerate(consumer_pins)
        if p.src == producer and p.weight == 0
    ]
    if not reads:
        return None
    if any(p.src == producer and p.weight != 0 for p in consumer_pins):
        return None

    merged_pins: List[Pin] = []
    index_of: Dict[Tuple[int, int], int] = {}

    def pin_var(p: Pin) -> int:
        key = (p.src, p.weight)
        if key not in index_of:
            index_of[key] = len(merged_pins)
            merged_pins.append(p)
        return index_of[key]

    consumer_map: List[Optional[int]] = [
        None if i in reads else pin_var(p) for i, p in enumerate(consumer_pins)
    ]
    producer_map = [pin_var(p) for p in producer_pins]

    n = len(merged_pins)
    width = n + 1  # scratch variable n carries the producer output
    prod = _extend_with_repeats(producer_func, producer_map, width)
    placement = [n if m is None else m for m in consumer_map]
    cons = _extend_with_repeats(consumer_func, placement, width)
    merged = cons.compose(n, prod).remove_var(n)

    shrunk, sup = merged.shrink_to_support()
    return shrunk, [merged_pins[i] for i in sup]


def _extend_with_repeats(
    func: TruthTable, placement: List[int], width: int
) -> TruthTable:
    """``TruthTable.extend`` allowing repeated placement targets.

    Variables mapping to the same target are fused onto the first
    occurrence before extending (``extend`` itself requires distinct
    targets).
    """
    seen: Dict[int, int] = {}
    fused = func
    for i, target in enumerate(placement):
        if target in seen:
            fused = fused.compose(i, TruthTable.var(seen[target], fused.n))
        else:
            seen[target] = i
    shrunk, sup = fused.shrink_to_support()
    return shrunk.extend(width, [placement[i] for i in sup])
