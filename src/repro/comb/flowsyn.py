"""FlowSYN: combinational LUT mapping beyond the depth limit of FlowMap.

Implements the resynthesis idea of Cong-Ding [5]: when FlowMap's label
computation finds no K-feasible cut of height ``L - 1`` for node ``v``
(which would force ``l(v) = L + 1``), FlowSYN looks for *wider* min-cuts —
up to ``Cmax`` nodes — of the same or lower height, composes the exact
cone function, and tries to realize it as a tree of K-LUTs through
OBDD/Roth-Karp functional decomposition whose root still achieves depth
``L``.  Inputs are sorted by increasing label so the latest-arriving
signals stay near the root (paper Section 3.3).

This module is the combinational engine reused by the FlowSYN-s baseline
of the paper's Table 1 (:mod:`repro.core.flowsyn_s`); the sequential
variant used inside TurboSYN lives in :mod:`repro.core.seqdecomp`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.boolfn.decompose import LutTree, synthesize_lut_tree
from repro.comb.cone import cone_function, fanin_cone
from repro.comb.flowmap import CombMapping, _find_cut
from repro.comb.maxflow import SplitNetwork
from repro.netlist.graph import NodeKind, SeqCircuit
from repro.netlist.validate import ensure_mappable

#: The paper bounds resynthesis cuts to 15 inputs ("which is set to be 15
#: in TurboSYN").
DEFAULT_CMAX = 15


@dataclass(frozen=True)
class Resynthesis:
    """A recorded resynthesis: cut nodes and the LUT tree over them."""

    cut: Tuple[int, ...]
    tree: LutTree


def compute_labels_resyn(
    circuit: SeqCircuit, k: int, cmax: int = DEFAULT_CMAX
) -> Tuple[Dict[int, int], Dict[int, Tuple[int, ...]], Dict[int, Resynthesis]]:
    """FlowSYN labels: FlowMap labels improved by functional decomposition.

    Returns ``(labels, cuts, resyn)``.  Nodes in ``resyn`` achieve their
    label through a decomposition tree instead of a single cut.
    """
    ensure_mappable(circuit, k)
    labels: Dict[int, int] = {}
    cuts: Dict[int, Tuple[int, ...]] = {}
    resyn: Dict[int, Resynthesis] = {}
    for v in circuit.comb_topo_order():
        kind = circuit.kind(v)
        if kind is NodeKind.PI:
            labels[v] = 0
            continue
        if kind is NodeKind.PO:
            labels[v] = labels[circuit.fanins(v)[0].src]
            continue
        fanins = circuit.fanins(v)
        if not fanins:
            labels[v] = 1
            cuts[v] = ()
            continue
        big_l = max(labels[p.src] for p in fanins)
        cut = _find_cut(circuit, v, labels, big_l, k)
        if cut is not None:
            labels[v] = big_l
            cuts[v] = cut
            continue
        entry = _try_resynthesis(circuit, v, labels, big_l, k, cmax)
        if entry is not None:
            labels[v] = big_l
            resyn[v] = entry
        else:
            labels[v] = big_l + 1
            cuts[v] = tuple(dict.fromkeys(p.src for p in fanins))
    return labels, cuts, resyn


def _min_cut_below(
    circuit: SeqCircuit,
    v: int,
    labels: Dict[int, int],
    max_label: int,
    cmax: int,
) -> Optional[Tuple[int, ...]]:
    """A min-cut for ``v`` whose nodes all have ``label <= max_label``.

    Returns ``None`` when no such cut of at most ``cmax`` nodes exists.
    """
    if max_label < 0:
        return None
    cone = fanin_cone(circuit, v)
    net = SplitNetwork()
    sink_side = {u for u in cone if u == v or labels[u] > max_label}
    if any(circuit.kind(u) is NodeKind.PI for u in sink_side):
        return None  # a PI would have to be inside the LUT: impossible
    for u in cone:
        net.add_dag_node(u, cuttable=u not in sink_side)
    for u in cone:
        for pin in circuit.fanins(u):
            if pin.src in cone:
                net.add_dag_edge(pin.src, u)
        if circuit.kind(u) is NodeKind.PI:
            net.attach_source(u)
    for u in sink_side:
        net.attach_sink(u)
    if net.max_flow(cmax) > cmax:
        return None
    return tuple(sorted(net.cut_nodes()))


def _try_resynthesis(
    circuit: SeqCircuit,
    v: int,
    labels: Dict[int, int],
    big_l: int,
    k: int,
    cmax: int,
) -> Optional[Resynthesis]:
    """Paper's resynthesis loop: min-cuts of decreasing height, decompose."""
    for h in range(big_l):
        cut = _min_cut_below(circuit, v, labels, big_l - 1 - h, cmax)
        if cut is None:
            return None  # deeper cuts only grow; stop
        func = cone_function(circuit, v, list(cut))
        arrival = [labels[u] for u in cut]
        tree = synthesize_lut_tree(func, arrival, k, deadline=big_l)
        if tree is not None:
            return Resynthesis(cut, tree)
    return None


def generate_mapping_resyn(
    circuit: SeqCircuit,
    labels: Dict[int, int],
    cuts: Dict[int, Tuple[int, ...]],
    resyn: Dict[int, Resynthesis],
    name: Optional[str] = None,
) -> SeqCircuit:
    """Mapping generation that also materializes decomposition trees."""
    needed: List[int] = []
    seen = set()

    def require(src: int) -> None:
        if circuit.kind(src) is NodeKind.GATE and src not in seen:
            seen.add(src)
            needed.append(src)

    for po in circuit.pos:
        require(circuit.fanins(po)[0].src)
    idx = 0
    while idx < len(needed):
        v = needed[idx]
        idx += 1
        inputs = resyn[v].cut if v in resyn else cuts[v]
        for u in inputs:
            require(u)

    mapped = SeqCircuit(name or f"{circuit.name}_lut")
    new_id: Dict[int, int] = {}
    for pi in circuit.pis:
        new_id[pi] = mapped.add_pi(circuit.name_of(pi))
    order_pos = {nid: i for i, nid in enumerate(circuit.comb_topo_order())}
    for v in sorted(needed, key=lambda nid: order_pos[nid]):
        if v in resyn:
            entry = resyn[v]
            leaf_ids = [new_id[u] for u in entry.cut]
            refs: List[int] = []
            base = circuit.name_of(v)
            for j, lut in enumerate(entry.tree.luts):
                pins = [
                    (leaf_ids[r], 0) if r >= 0 else (refs[-1 - r], 0)
                    for r in lut.inputs
                ]
                is_root = j == len(entry.tree.luts) - 1
                refs.append(
                    mapped.add_gate(base if is_root else f"{base}~s{j}", lut.func, pins)
                )
            new_id[v] = refs[-1]
        else:
            cut = cuts[v]
            func = cone_function(circuit, v, list(cut))
            new_id[v] = mapped.add_gate(
                circuit.name_of(v), func, [(new_id[u], 0) for u in cut]
            )
    for po in circuit.pos:
        pin = circuit.fanins(po)[0]
        mapped.add_po(circuit.name_of(po), new_id[pin.src], pin.weight)
    mapped.check()
    return mapped


def flowsyn(
    circuit: SeqCircuit,
    k: int = 5,
    cmax: int = DEFAULT_CMAX,
    name: Optional[str] = None,
) -> CombMapping:
    """FlowSYN mapping: FlowMap depth further reduced by resynthesis."""
    labels, cuts, resyn = compute_labels_resyn(circuit, k, cmax)
    mapped = generate_mapping_resyn(circuit, labels, cuts, resyn, name)
    return CombMapping(
        mapped=mapped,
        depth=mapped.clock_period(),
        labels=labels,
        cuts=cuts,
    )
