"""Bottom-up K-feasible cut enumeration for combinational networks.

FlowMap answers "is there a K-cut of height h?" with one max-flow query;
the classical alternative enumerates *all* K-feasible cuts bottom-up:

    cuts(PI)  = { {PI} }
    cuts(v)   = { {v} }  ∪  { merge(c1, ..., cm) : ci ∈ cuts(fanin_i),
                              |merge| <= K }

This module provides that enumeration (with the standard dominance
pruning and an optional per-node cap, i.e. *priority cuts*), plus two
consumers:

* :func:`min_depth_by_cuts` — depth-optimal labels computed from the cut
  sets; used by the test suite as an independent oracle for FlowMap;
* :func:`area_flow_cuts` — the classical area-flow heuristic for
  area-oriented cut selection, the substrate of
  :func:`repro.comb.areamap.area_flow_map`.

Cut enumeration is exponential in the worst case; the cap bounds it in
the priority-cuts style (Mishchenko et al.), at the cost of optimality
when the cap bites.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.netlist.graph import NodeKind, SeqCircuit

Cut = FrozenSet[int]


def _merge(
    parts: List[List[Cut]], k: int, cap: Optional[int]
) -> List[Cut]:
    """Cross-product merge of fanin cut sets, K-bounded and deduplicated."""
    acc: List[Cut] = [frozenset()]
    for cuts in parts:
        nxt: List[Cut] = []
        seen = set()
        for base in acc:
            for cut in cuts:
                merged = base | cut
                if len(merged) > k or merged in seen:
                    continue
                seen.add(merged)
                nxt.append(merged)
        acc = nxt
        if cap is not None and len(acc) > 4 * cap:
            acc.sort(key=len)
            acc = acc[: 4 * cap]
    return acc


def _prune_dominated(cuts: List[Cut]) -> List[Cut]:
    """Drop cuts that are supersets of another cut (dominance)."""
    cuts = sorted(set(cuts), key=len)
    kept: List[Cut] = []
    for cut in cuts:
        if not any(other <= cut for other in kept):
            kept.append(cut)
    return kept


def enumerate_cuts(
    circuit: SeqCircuit,
    k: int,
    cap: Optional[int] = 64,
) -> Dict[int, List[Cut]]:
    """All (or the ``cap`` best-by-size) K-feasible cuts per node.

    Only zero-weight edges are traversed: the circuit must be
    combinational.  Each node's list includes its trivial cut ``{v}``
    (PIs have only that).
    """
    for *_e, w in circuit.edges():
        if w != 0:
            raise ValueError("cut enumeration requires a combinational circuit")
    cuts: Dict[int, List[Cut]] = {}
    for v in circuit.comb_topo_order():
        kind = circuit.kind(v)
        if kind is NodeKind.PI:
            cuts[v] = [frozenset([v])]
            continue
        if kind is NodeKind.PO:
            continue
        fanin_cuts = [cuts[p.src] for p in circuit.fanins(v)]
        merged = _merge(fanin_cuts, k, cap) if fanin_cuts else [frozenset()]
        merged = _prune_dominated(merged)
        if cap is not None and len(merged) > cap:
            merged = merged[:cap]
        result = [frozenset([v])]
        for cut in merged:
            if cut != frozenset([v]):
                result.append(cut)
        cuts[v] = result
    return cuts


def min_depth_by_cuts(
    circuit: SeqCircuit, k: int, cap: Optional[int] = None
) -> Dict[int, int]:
    """Depth-optimal labels by dynamic programming over enumerated cuts.

    With ``cap=None`` (full enumeration) this equals FlowMap's optimum;
    the test suite uses it as an independent oracle.
    """
    all_cuts = enumerate_cuts(circuit, k, cap)
    depth: Dict[int, int] = {}
    for v in circuit.comb_topo_order():
        kind = circuit.kind(v)
        if kind is NodeKind.PI:
            depth[v] = 0
            continue
        if kind is NodeKind.PO:
            depth[v] = depth[circuit.fanins(v)[0].src]
            continue
        best = None
        for cut in all_cuts[v]:
            if cut == frozenset([v]):
                continue
            height = max((depth[u] for u in cut), default=0)
            best = height + 1 if best is None else min(best, height + 1)
        if best is None:  # constant generator
            best = 1
        depth[v] = best
    return depth


def area_flow_cuts(
    circuit: SeqCircuit, k: int, cap: Optional[int] = 24
) -> Dict[int, Cut]:
    """Pick one cut per node minimizing *area flow*.

    Area flow estimates shared area: ``af(v) = (1 + sum af(u)/fanouts(u))
    over the cut leaves``; choosing the minimum per node approximates
    minimum-area mapping (ties broken toward smaller depth, then smaller
    cuts).  Returns the chosen cut per gate.
    """
    all_cuts = enumerate_cuts(circuit, k, cap)
    depth = min_depth_by_cuts(circuit, k, cap)
    area_flow: Dict[int, float] = {}
    chosen: Dict[int, Cut] = {}
    for v in circuit.comb_topo_order():
        kind = circuit.kind(v)
        if kind is NodeKind.PI:
            area_flow[v] = 0.0
            continue
        if kind is NodeKind.PO:
            continue
        best_key = None
        best_cut = None
        for cut in all_cuts[v]:
            if cut == frozenset([v]):
                continue
            flow = 1.0
            height = 0
            for u in cut:
                fanout = max(1, len(circuit.fanouts(u)))
                flow += area_flow[u] / fanout
                height = max(height, depth[u])
            key = (flow, height + 1, len(cut))
            if best_key is None or key < best_key:
                best_key = key
                best_cut = cut
        if best_cut is None:  # constant generator
            best_cut = frozenset()
            best_key = (1.0, 1, 0)
        area_flow[v] = best_key[0]
        chosen[v] = best_cut
    return chosen
