"""Area-oriented combinational LUT mapping (area-flow heuristic).

FlowMap (and the sequential mappers built on it) optimize depth first;
this module provides the complementary area-first mapping built on cut
enumeration (:mod:`repro.comb.cutenum`): each gate picks its minimum
area-flow cut, mapping generation walks the chosen cuts from the POs,
and packing cleans up.  Not part of the paper's flow — provided because
a usable open-source mapper needs an area mode, and the comparison makes
the depth/area trade-off of Table 1's discussion concrete (see
``benchmarks/bench_area.py``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.comb.cone import cone_function
from repro.comb.cutenum import area_flow_cuts
from repro.comb.flowmap import CombMapping
from repro.comb.pack import pack_luts
from repro.netlist.graph import NodeKind, SeqCircuit
from repro.netlist.validate import ensure_mappable


def area_flow_map(
    circuit: SeqCircuit,
    k: int = 5,
    cap: Optional[int] = 24,
    pack: bool = True,
    name: Optional[str] = None,
) -> CombMapping:
    """Map a combinational circuit onto K-LUTs minimizing estimated area."""
    ensure_mappable(circuit, k)
    chosen = area_flow_cuts(circuit, k, cap)

    needed = []
    seen = set()

    def require(src: int) -> None:
        if circuit.kind(src) is NodeKind.GATE and src not in seen:
            seen.add(src)
            needed.append(src)

    for po in circuit.pos:
        require(circuit.fanins(po)[0].src)
    idx = 0
    while idx < len(needed):
        v = needed[idx]
        idx += 1
        for u in chosen[v]:
            require(u)

    mapped = SeqCircuit(name or f"{circuit.name}_area")
    new_id: Dict[int, int] = {}
    for pi in circuit.pis:
        new_id[pi] = mapped.add_pi(circuit.name_of(pi))
    order_pos = {nid: i for i, nid in enumerate(circuit.comb_topo_order())}
    for v in sorted(needed, key=lambda nid: order_pos[nid]):
        cut = sorted(chosen[v])
        func = cone_function(circuit, v, cut)
        mapped.add_gate(
            circuit.name_of(v), func, [(new_id[u], 0) for u in cut]
        )
        new_id[v] = mapped.id_of(circuit.name_of(v))
    for po in circuit.pos:
        pin = circuit.fanins(po)[0]
        mapped.add_po(circuit.name_of(po), new_id[pin.src], pin.weight)
    mapped.check()
    if pack:
        mapped = pack_luts(mapped, k)
    labels = {v: 0 for v in circuit.node_ids()}
    return CombMapping(
        mapped=mapped,
        depth=mapped.clock_period(),
        labels=labels,
        cuts={v: tuple(sorted(c)) for v, c in chosen.items()},
    )
