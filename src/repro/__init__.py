"""TurboSYN reproduction.

A from-scratch Python implementation of the system described in

    Jason Cong and Chang Wu,
    "FPGA Synthesis with Retiming and Pipelining for Clock Period
    Minimization of Sequential Circuits", DAC 1997,

together with every substrate it depends on: a retiming-graph netlist
representation with BLIF/KISS2 I/O, a Boolean function engine (packed truth
tables, a ROBDD manager, two-level covers, Roth-Karp functional
decomposition), combinational LUT mapping (FlowMap, FlowSYN, packing, gate
decomposition), Leiserson-Saxe retiming and pipelining, and the sequential
mapping core (TurboMap and TurboSYN label computation with positive loop
detection).

Quickstart::

    from repro import SeqCircuit, turbosyn

    circuit = SeqCircuit.from_blif_file("design.blif")
    result = turbosyn(circuit, k=5)
    print(result.phi, result.mapped.n_gates)
"""

from importlib import import_module

# Public name -> defining module.  Resolved lazily so that importing the
# top-level package stays cheap and submodules remain independently
# importable.
_EXPORTS = {
    "NodeKind": "repro.netlist.graph",
    "Pin": "repro.netlist.graph",
    "SeqCircuit": "repro.netlist.graph",
    "TruthTable": "repro.boolfn.truthtable",
    "turbomap": "repro.core.turbomap",
    "turbosyn": "repro.core.turbosyn",
    "flowsyn_s": "repro.core.flowsyn_s",
    "flowmap": "repro.comb.flowmap",
    "flowsyn": "repro.comb.flowsyn",
    "area_flow_map": "repro.comb.areamap",
    "pack_luts": "repro.comb.pack",
    "mdr_ratio": "repro.retime.mdr",
    "min_feasible_period": "repro.retime.mdr",
    "pipeline_and_retime": "repro.retime.pipeline",
    "min_period_retiming": "repro.retime.leiserson",
    "minimize_registers": "repro.retime.regmin",
    "read_blif": "repro.netlist.blif",
    "write_blif": "repro.netlist.blif",
    "read_blif_file": "repro.netlist.blif",
    "write_blif_file": "repro.netlist.blif",
    "read_kiss": "repro.netlist.kiss",
    "write_kiss": "repro.netlist.kiss",
    "FSM": "repro.netlist.kiss",
    "simulation_equivalent": "repro.verify.equiv",
    "unrolled_equivalent": "repro.verify.equiv",
}


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = sorted(_EXPORTS)

__version__ = "1.0.0"
