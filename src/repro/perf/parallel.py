"""Speculative parallel probing of candidate clock periods.

The Figure-4 driver answers "is integer period ``phi`` feasible?" with
one full label computation per candidate — probes are completely
independent, and feasibility is *monotone* in ``phi`` (any mapping for
``phi`` works for ``phi + 1``).  Monotonicity makes speculation safe:
probe several candidates at once, and every answer — including the
"losing" speculative ones — still tightens the search interval and lands
in the shared outcome cache.

:func:`parallel_search_min_phi` is a drop-in replacement for
:func:`repro.core.driver.search_min_phi`: with ``workers`` processes it
replaces the binary search's log2 halving with a ``(workers+1)``-way
interval split per round, so the round count drops to
``log_{workers+1}(UB)`` while each round costs one slowest-probe wall
clock.  The returned ``phi`` and labels are identical to the sequential
search — only the set of *extra* probed values (and the wall clock)
differs.

Implementation notes: probes run in a ``ProcessPoolExecutor`` whose
initializer ships the circuit to each worker exactly once; the fork
start method is preferred when available so the circuit is inherited
by copy-on-write instead of pickled.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.core.driver import (
    infeasible_error,
    probe_phi,
    search_bounds,
    search_min_phi,
)
from repro.core.labels import LabelOutcome
from repro.core.seqdecomp import DEFAULT_CMAX
from repro.netlist.graph import SeqCircuit
from repro.netlist.validate import ensure_mappable

#: Per-process probe context installed by the pool initializer:
#: ``(circuit, k, resynthesize, cmax, pld, extra_depth, io_constrained)``.
_WORKER_ARGS: Optional[tuple] = None


def _init_worker(
    circuit: SeqCircuit,
    k: int,
    resynthesize: bool,
    cmax: int,
    pld: bool,
    extra_depth: int,
    io_constrained: bool,
) -> None:
    global _WORKER_ARGS
    _WORKER_ARGS = (circuit, k, resynthesize, cmax, pld, extra_depth, io_constrained)


def _probe_worker(phi: int) -> Tuple[int, LabelOutcome]:
    assert _WORKER_ARGS is not None, "worker used before initialization"
    circuit, k, resynthesize, cmax, pld, extra_depth, io_constrained = _WORKER_ARGS
    outcome = probe_phi(
        circuit,
        k,
        phi,
        resynthesize,
        cmax=cmax,
        pld=pld,
        extra_depth=extra_depth,
        io_constrained=io_constrained,
    )
    return phi, outcome


def _spread(lo: int, hi: int, count: int) -> List[int]:
    """Up to ``count`` distinct split points of ``[lo, hi]``, ``hi`` included.

    Evenly spaced so each round's answers cut the interval to roughly
    ``1/(count+1)`` of its size regardless of where the optimum sits.
    """
    span = hi - lo
    count = max(1, min(count, span + 1))
    return sorted({lo + (span * (i + 1)) // count for i in range(count)})


def _pool_context():
    """Prefer fork (cheap circuit shipping); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return None


def parallel_search_min_phi(
    circuit: SeqCircuit,
    k: int,
    upper_bound: int,
    resynthesize: bool,
    workers: Optional[int] = None,
    cmax: int = DEFAULT_CMAX,
    pld: bool = True,
    extra_depth: int = 0,
    io_constrained: bool = False,
) -> Tuple[int, Dict[int, LabelOutcome]]:
    """Find the minimum feasible ``phi`` with speculative parallel probes.

    Returns the same ``(phi_min, outcomes)`` contract as
    :func:`repro.core.driver.search_min_phi`; ``outcomes`` additionally
    contains every speculative probe that ran.  ``workers=None`` uses the
    CPU count; ``workers<=1`` delegates to the sequential search.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1:
        return search_min_phi(
            circuit,
            k,
            upper_bound,
            resynthesize,
            cmax=cmax,
            pld=pld,
            extra_depth=extra_depth,
            io_constrained=io_constrained,
        )
    ensure_mappable(circuit, k)
    outcomes: Dict[int, LabelOutcome] = {}
    top, ceiling = search_bounds(circuit, upper_bound, io_constrained)

    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(circuit, k, resynthesize, cmax, pld, extra_depth, io_constrained),
    ) as pool:

        def probe_all(phis: List[int]) -> Dict[int, bool]:
            missing = [p for p in phis if p not in outcomes]
            for p, outcome in pool.map(_probe_worker, missing):
                outcomes[p] = outcome
            return {p: outcomes[p].feasible for p in phis}

        lo = 1
        best: Optional[int] = None  # smallest phi known feasible
        # Establish a feasible upper end.  The first round already splits
        # [lo, top] instead of probing only `top`, so when the given bound
        # is feasible (the common case: it comes from a valid mapping) the
        # narrowing starts immediately; when it is not, answers below
        # `top` were infeasible too and the doubling continues upward.
        while best is None:
            results = probe_all(_spread(lo, top, workers))
            feasible = [p for p, ok in results.items() if ok]
            infeasible = [p for p, ok in results.items() if not ok]
            if feasible:
                best = min(feasible)
            if infeasible:
                lo = max(lo, max(infeasible) + 1)
            if best is None:
                if top >= ceiling:
                    raise infeasible_error(circuit, top)
                top = min(2 * top, ceiling)
        # Multi-way narrowing of [lo, best).
        while lo < best:
            results = probe_all(_spread(lo, best - 1, workers))
            for p, ok in results.items():
                if ok:
                    best = min(best, p)
                else:
                    lo = max(lo, p + 1)
    return best, outcomes
