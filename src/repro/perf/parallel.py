"""Speculative parallel probing of candidate clock periods.

The Figure-4 driver answers "is integer period ``phi`` feasible?" with
one full label computation per candidate — probes are completely
independent, and feasibility is *monotone* in ``phi`` (any mapping for
``phi`` works for ``phi + 1``).  Monotonicity makes speculation safe:
probe several candidates at once, and every answer — including the
"losing" speculative ones — still tightens the search interval and lands
in the shared outcome cache.

:func:`parallel_search_min_phi` is a drop-in replacement for
:func:`repro.core.driver.search_min_phi`: with ``workers`` processes it
replaces the binary search's log2 halving with a ``(workers+1)``-way
interval split per round, so the round count drops to
``log_{workers+1}(UB)`` while each round costs one slowest-probe wall
clock.  The returned ``phi`` and labels are identical to the sequential
search — only the set of *extra* probed values (and the wall clock)
differs.

Fault tolerance: a worker death (OOM kill, crash, injected fault) breaks
a ``ProcessPoolExecutor`` permanently — every pending future raises
``BrokenProcessPool``.  :class:`_ProbePool` absorbs that: answers
harvested before the break stay in the outcome cache, the pool is
rebuilt and only the lost probes are retried, with seeded capped
exponential backoff between restarts (:class:`RetryPolicy`).  After
``max_restarts`` failed pools the search degrades to the sequential
:func:`search_min_phi`, seeded with the outcome cache so no completed
probe is ever re-run.  A :class:`Budget` bounds everything in wall-clock
time; on expiry the best-known feasible ``phi`` is returned with the
budget marked exhausted.

Implementation notes: probes run in a ``ProcessPoolExecutor`` whose
initializer ships the circuit to each worker exactly once; the fork
start method is preferred when available so the circuit is inherited
by copy-on-write instead of pickled.  Under the compiled kernel the
circuit's CSR arrays are *published* once (shared-memory segment or
inline bytes, :mod:`repro.kernel.share`) and attached by each worker in
the initializer — the circuit pickle itself drops its derived caches
(:meth:`SeqCircuit.__getstate__`) and no worker recompiles the kernel.
Per-probe warm seeds travel as packed ``int32`` bytes instead of
pickled lists.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import CacheKey, OutcomeCache

from repro.core.driver import (
    infeasible_error,
    probe_phi,
    search_bounds,
    search_min_phi,
)
from repro.core.expanded import DEFAULT_MAX_COPIES
from repro.core.labels import LabelOutcome
from repro.core.seqdecomp import DEFAULT_CMAX
from repro.kernel.share import CsrHandle, pack_labels, publish_csr, unpack_labels
from repro.netlist.graph import SeqCircuit
from repro.netlist.validate import ensure_mappable
from repro.resilience.budget import (
    Budget,
    BudgetExhausted,
    DeadlineExpired,
    ProbeTimeout,
)
from repro.resilience.retry import RetryPolicy

#: Per-process probe context installed by the pool initializer:
#: ``(circuit, k, resynthesize, cmax, pld, extra_depth, io_constrained,
#: probe_timeout, engine, max_copies, flow, kernel)``.
_WORKER_ARGS: Optional[tuple] = None


class _PoolGivenUp(Exception):
    """Internal: too many pool failures; degrade to sequential probing."""


def _init_worker(
    circuit: SeqCircuit,
    k: int,
    resynthesize: bool,
    cmax: int,
    pld: bool,
    extra_depth: int,
    io_constrained: bool,
    probe_timeout: Optional[float],
    engine: str,
    max_copies: int,
    flow: str = "dinic",
    kernel: str = "compiled",
    csr_handle: Optional[CsrHandle] = None,
) -> None:
    global _WORKER_ARGS
    if csr_handle is not None and circuit._compiled is None:
        # Spawned workers receive the circuit without its derived caches
        # (SeqCircuit.__getstate__); the compiled kernel arrives through
        # the published handle instead of being recompiled per worker.
        # Forked workers inherit the parent's compiled arrays by
        # copy-on-write and skip the attach.
        circuit.adopt_compiled(csr_handle.attach())
    _WORKER_ARGS = (
        circuit, k, resynthesize, cmax, pld, extra_depth, io_constrained,
        probe_timeout, engine, max_copies, flow, kernel,
    )


def _probe_worker(
    phi: int, seed_blob: Optional[bytes] = None
) -> Tuple[int, LabelOutcome]:
    assert _WORKER_ARGS is not None, "worker used before initialization"
    (circuit, k, resynthesize, cmax, pld, extra_depth, io_constrained,
     probe_timeout, engine, max_copies, flow, kernel) = _WORKER_ARGS
    # The timeout is anchored inside probe_phi: it covers label-
    # computation time, not time spent queued in the pool.  The warm
    # seed travels with the task as packed int32 bytes (the shared
    # outcome cache lives in the parent process).
    outcome = probe_phi(
        circuit,
        k,
        phi,
        resynthesize,
        cmax=cmax,
        pld=pld,
        extra_depth=extra_depth,
        io_constrained=io_constrained,
        timeout=probe_timeout,
        engine=engine,
        seed_labels=unpack_labels(seed_blob),
        max_copies=max_copies,
        flow=flow,
        kernel=kernel,
    )
    return phi, outcome


def _spread(lo: int, hi: int, count: int) -> List[int]:
    """Up to ``count`` distinct split points of ``[lo, hi]``, ``hi`` included.

    Evenly spaced so each round's answers cut the interval to roughly
    ``1/(count+1)`` of its size regardless of where the optimum sits.
    """
    span = hi - lo
    count = max(1, min(count, span + 1))
    return sorted({lo + (span * (i + 1)) // count for i in range(count)})


def _pool_context():
    """Prefer fork (cheap circuit shipping); fall back to the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return None


class _ProbePool:
    """A restartable probe pool: survives worker death, retries lost probes.

    ``probe_all`` harvests answers into the shared ``outcomes`` cache as
    they complete, so a pool break loses only the probes still in
    flight.  Each ``BrokenProcessPool`` recycles the pool (counted on
    ``budget.attempts``) after a deterministic backoff delay; once
    ``policy.max_restarts`` restarts have been burned, ``_PoolGivenUp``
    tells the caller to degrade to the sequential search.
    """

    def __init__(
        self,
        initargs: tuple,
        workers: int,
        budget: Optional[Budget],
        policy: RetryPolicy,
        warm_start: bool = True,
        csr_handle: Optional[CsrHandle] = None,
        owns_handle: bool = True,
        cache: Optional["OutcomeCache"] = None,
        cache_key: Optional["CacheKey"] = None,
    ) -> None:
        self._initargs = initargs
        self._workers = workers
        self._budget = budget
        self._policy = policy
        self._warm_start = warm_start
        # Persistent outcome store (probe adoption, warm seeds, write-
        # through); lives in the parent process only — workers receive
        # seeds with their task and return plain outcomes.
        self._cache = cache
        self._cache_key = cache_key
        self._cache_seeded: Set[int] = set()
        # Owner side of the published compiled circuit; must outlive
        # every pool restart (the same handle re-initializes rebuilt
        # pools).  When owned it is released exactly once, on shutdown;
        # a caller-provided handle (the serve scheduler publishing a
        # stored blob shared across jobs) is left alone.
        self._csr_handle = csr_handle
        self._owns_handle = owns_handle
        self._pool: Optional[ProcessPoolExecutor] = None
        self.failures = 0

    def _ensure(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._workers,
                mp_context=_pool_context(),
                initializer=_init_worker,
                initargs=self._initargs,
            )
        return self._pool

    def _recycle(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def shutdown(self) -> None:
        self._recycle()
        if self._csr_handle is not None and self._owns_handle:
            self._csr_handle.unlink()

    def _on_broken_pool(self) -> None:
        self._recycle()
        self.failures += 1
        if self._budget is not None:
            self._budget.attempts += 1
            self._budget.note("pool_restart", failures=self.failures)
        if self.failures > self._policy.max_restarts:
            raise _PoolGivenUp()
        time.sleep(self._policy.delay(self.failures))

    def _adopt_cached(
        self, phi: int, outcomes: Dict[int, LabelOutcome]
    ) -> bool:
        """Serve ``phi`` from the persistent store instead of a worker."""
        if self._cache is None:
            return False
        cached = self._cache.get_outcome(self._cache_key, phi)
        if cached is None:
            return False
        cached.stats.outcome_cache_hits = 1
        cached.stats.cache_probes_skipped = 1
        outcomes[phi] = cached
        return True

    def _seed_blob(
        self, phi: int, outcomes: Dict[int, LabelOutcome]
    ) -> Optional[bytes]:
        """The warm seed shipped with a probe task, as packed int32.

        The persistent store competes with in-run outcomes for the
        tightest feasible label set above ``phi`` (a tighter seed is
        strictly less solver work; the verdict is unchanged either
        way)."""
        if not self._warm_start:
            return None
        in_run_best = min(
            (p for p, o in outcomes.items() if p > phi and o.feasible),
            default=None,
        )
        if self._cache is not None and (
            in_run_best is None or in_run_best > phi + 1
        ):
            found = self._cache.nearest_seed(self._cache_key, phi)
            if found is not None and (
                in_run_best is None or found[0] < in_run_best
            ):
                self._cache_seeded.add(phi)
                return pack_labels(found[1])
        if in_run_best is None:
            return None
        return pack_labels(outcomes[in_run_best].labels)

    def probe_all(
        self, phis: List[int], outcomes: Dict[int, LabelOutcome]
    ) -> Dict[int, bool]:
        """Answer every ``phi`` in ``phis``, retrying through pool failures.

        Each submission carries the warm seed visible in the outcome
        cache *at submission time* — answers from earlier rounds warm
        later rounds' probes, exactly like the sequential search (a
        probe in flight cannot seed a sibling of the same round).
        Candidates answered by the persistent store never reach a
        worker at all; fresh answers are written through to it.
        """
        missing = [p for p in phis if p not in outcomes]
        missing = [p for p in missing if not self._adopt_cached(p, outcomes)]
        while missing:
            if self._budget is not None:
                self._budget.check()
            pool = self._ensure()
            try:
                pending = {
                    pool.submit(_probe_worker, p, self._seed_blob(p, outcomes))
                    for p in missing
                }
                while pending:
                    timeout = None
                    if self._budget is not None:
                        timeout = self._budget.remaining()
                        if timeout is not None and timeout <= 0:
                            raise DeadlineExpired(
                                "wall-clock budget exhausted while waiting "
                                "for probe results"
                            )
                    done, pending = wait(
                        pending, timeout=timeout, return_when=FIRST_COMPLETED
                    )
                    if not done:  # the deadline passed with probes in flight
                        raise DeadlineExpired(
                            "wall-clock budget exhausted while waiting for "
                            "probe results"
                        )
                    for future in done:
                        phi, outcome = future.result()
                        if phi in self._cache_seeded:
                            self._cache_seeded.discard(phi)
                            outcome.stats.cache_seeds = 1
                        outcomes[phi] = outcome
                        if self._cache is not None:
                            self._cache.put_outcome(
                                self._cache_key, phi, outcome
                            )
                missing = []
            except BrokenProcessPool:
                # Answers already harvested stay cached; retry the rest.
                missing = [p for p in missing if p not in outcomes]
                self._on_broken_pool()
            except (DeadlineExpired, ProbeTimeout):
                self._recycle()
                raise
        return {p: outcomes[p].feasible for p in phis}


def parallel_search_min_phi(
    circuit: SeqCircuit,
    k: int,
    upper_bound: int,
    resynthesize: bool,
    workers: Optional[int] = None,
    cmax: int = DEFAULT_CMAX,
    pld: bool = True,
    extra_depth: int = 0,
    io_constrained: bool = False,
    budget: Optional[Budget] = None,
    retry: Optional[RetryPolicy] = None,
    engine: str = "worklist",
    warm_start: bool = True,
    max_copies: int = DEFAULT_MAX_COPIES,
    flow: str = "dinic",
    kernel: str = "compiled",
    outcomes: Optional[Dict[int, LabelOutcome]] = None,
    csr_handle: Optional[CsrHandle] = None,
    cache: Optional["OutcomeCache"] = None,
    cache_key: Optional["CacheKey"] = None,
) -> Tuple[int, Dict[int, LabelOutcome]]:
    """Find the minimum feasible ``phi`` with speculative parallel probes.

    Returns the same ``(phi_min, outcomes)`` contract as
    :func:`repro.core.driver.search_min_phi`; ``outcomes`` additionally
    contains every speculative probe that ran.  ``workers=None`` uses the
    CPU count; ``workers<=1`` delegates to the sequential search.

    ``budget`` bounds the search in wall-clock time (degrading to the
    best-known feasible answer on expiry, raising
    :class:`BudgetExhausted` when there is none); ``retry`` governs
    worker-pool restarts after ``BrokenProcessPool`` failures, after
    which the search falls back to sequential probing seeded with the
    outcome cache.  ``engine`` / ``warm_start`` / ``max_copies`` /
    ``flow`` / ``kernel`` are the label-engine options of
    :func:`repro.core.driver.search_min_phi`; warm seeds ship with each
    submitted probe task as packed ``int32`` bytes, and under every
    CSR-backed kernel (``"compiled"``, ``"vector"``, ``"auto"``) the
    circuit's arrays are published to the workers once
    (:func:`repro.kernel.share.publish_csr`).

    ``outcomes`` seeds the shared probe cache (a resumed search adopts
    every cached answer verbatim and recomputes only the rest — the
    crash-recovery path of :mod:`repro.serve`); the dict is mutated in
    place as answers land.  ``csr_handle`` supplies an already-published
    compiled-circuit handle; the caller keeps ownership (it is not
    unlinked here), so a service can publish a stored blob once for many
    searches.

    ``cache`` + ``cache_key`` attach the persistent outcome store
    (:mod:`repro.cache`): spread candidates with a cached verdict are
    adopted without reaching a worker, cached feasible outcomes compete
    as warm seeds, fresh answers are written through, and cached
    infeasible verdicts raise the search's starting ``lo`` — the same
    trajectory-preserving integration as the sequential search.
    """
    if workers is None:
        workers = os.cpu_count() or 1
    if workers <= 1:
        return search_min_phi(
            circuit,
            k,
            upper_bound,
            resynthesize,
            cmax=cmax,
            pld=pld,
            extra_depth=extra_depth,
            io_constrained=io_constrained,
            budget=budget,
            engine=engine,
            warm_start=warm_start,
            max_copies=max_copies,
            flow=flow,
            kernel=kernel,
            outcomes=outcomes,
            cache=cache,
            cache_key=cache_key,
        )
    ensure_mappable(circuit, k)
    if budget is not None:
        budget.start()
    policy = retry if retry is not None else RetryPolicy()
    if outcomes is None:
        outcomes = {}
    probe_timeout = budget.probe_timeout if budget is not None else None
    owns_handle = csr_handle is None
    if csr_handle is None and kernel != "object":
        csr_handle = publish_csr(circuit.compiled())
    runner = _ProbePool(
        (circuit, k, resynthesize, cmax, pld, extra_depth, io_constrained,
         probe_timeout, engine, max_copies, flow, kernel, csr_handle),
        workers,
        budget,
        policy,
        warm_start=warm_start,
        csr_handle=csr_handle,
        owns_handle=owns_handle,
        cache=cache,
        cache_key=cache_key,
    )
    top, ceiling = search_bounds(circuit, upper_bound, io_constrained)
    lo = 1
    if cache is not None and cache_key is not None:
        # Cached infeasible verdicts (probe-verified by the runs that
        # wrote them) put the optimum strictly above all of them.
        lo = max(lo, cache.verified_floor(cache_key))
    best: Optional[int] = None  # smallest phi known feasible
    try:
        # Establish a feasible upper end.  The first round already splits
        # [lo, top] instead of probing only `top`, so when the given bound
        # is feasible (the common case: it comes from a valid mapping) the
        # narrowing starts immediately; when it is not, answers below
        # `top` were infeasible too and the doubling continues upward.
        while best is None:
            results = runner.probe_all(_spread(lo, top, workers), outcomes)
            feasible = [p for p, ok in results.items() if ok]
            infeasible = [p for p, ok in results.items() if not ok]
            if feasible:
                best = min(feasible)
            if infeasible:
                lo = max(lo, max(infeasible) + 1)
            if best is None:
                if top >= ceiling:
                    raise infeasible_error(circuit, top)
                top = min(2 * top, ceiling)
        # Multi-way narrowing of [lo, best).
        while lo < best:
            results = runner.probe_all(_spread(lo, best - 1, workers), outcomes)
            for p, ok in results.items():
                if ok:
                    best = min(best, p)
                else:
                    lo = max(lo, p + 1)
        return best, outcomes
    except _PoolGivenUp:
        # Too many pool failures: degrade to the sequential search, which
        # re-uses every completed probe through the seeded outcome cache.
        if budget is not None:
            budget.attempts += 1
            budget.note("sequential_fallback", failures=runner.failures)
        return search_min_phi(
            circuit,
            k,
            upper_bound,
            resynthesize,
            cmax=cmax,
            pld=pld,
            extra_depth=extra_depth,
            io_constrained=io_constrained,
            budget=budget,
            outcomes=outcomes,
            engine=engine,
            warm_start=warm_start,
            max_copies=max_copies,
            flow=flow,
            kernel=kernel,
            cache=cache,
            cache_key=cache_key,
        )
    except (DeadlineExpired, ProbeTimeout) as exc:
        if budget is None or best is None:
            raise BudgetExhausted(
                f"{circuit.name}: budget exhausted before any feasible "
                f"phi was found ({exc})"
            ) from exc
        budget.exhaust(exc)
        return best, outcomes
    finally:
        runner.shutdown()
