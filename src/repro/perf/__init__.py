"""Performance subsystem: parallel probing, run telemetry, regression gate.

* :mod:`repro.perf.timer` — small wall-clock accumulation helpers used by
  the instrumented hot paths;
* :mod:`repro.perf.parallel` — speculative multi-process probing of
  candidate clock periods (:func:`parallel_search_min_phi`), a drop-in
  replacement for the sequential Figure-4 binary search;
* :mod:`repro.perf.report` — the JSON run-report schema: per-run mapper
  telemetry and suite-level reports (the ``BENCH_*.json`` trajectory);
* :mod:`repro.perf.check` — the regression gate compared against a
  committed baseline (``python -m repro.perf.check``).
"""

from repro.perf.parallel import parallel_search_min_phi
from repro.perf.report import (
    SCHEMA_VERSION,
    load_report,
    mapper_run,
    suite_report,
    write_report,
)
from repro.perf.timer import Stopwatch

__all__ = [
    "SCHEMA_VERSION",
    "Stopwatch",
    "load_report",
    "mapper_run",
    "parallel_search_min_phi",
    "suite_report",
    "write_report",
]
