"""Kernel microbenchmarks: flow solve, expansion, and handoff bytes.

Usage::

    python -m repro.perf.microbench --circuits bbara dk16 \
        --out benchmarks/results

Times the hot kernel stages across the engine matrix using the
deterministic ``LabelStats`` telemetry the solver already collects:

* **flow** — aggregate min-cut solve time (``stats.t_flow``) and query
  count per flow engine (``dinic`` vs ``ek``) on an identical label
  workload, plus the Dinic work counters (``dinic_phases``,
  ``arcs_advanced``);
* **expansion** — partial-expansion time (``stats.t_expand``) per copy
  representation (``compiled`` CSR vs ``object`` tuples);
* **handoff** — startup bytes a parallel phi probe ships per worker:
  the pickled stripped circuit, the raw CSR blob, and the pickled
  :class:`~repro.kernel.share.CsrHandle` for each transport.

Every configuration runs the same ``(circuit, k, phi)`` label queries
(phi fixed at each circuit's known optimum via a reference run), and the
resulting labels are asserted identical across the whole matrix — a
configuration that diverged would make its timings meaningless.

Results go to stdout as a table and to ``BENCH_microbench.json``
(``bench-table`` schema, like the pytest-benchmark tables in
``benchmarks/results/``).  The CI microbench smoke job runs this on the
quick subset and archives the JSON.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import time
from typing import Any, Dict, List, Optional

from repro.core.labels import LabelSolver
from repro.perf.report import SCHEMA_VERSION
from repro.resilience.atomic import atomic_write_json

#: (flow, kernel) pairs timed by :func:`bench_circuit` — the reference
#: configuration (old engine) first, the new default last.
MATRIX = (
    ("ek", "object"),
    ("ek", "compiled"),
    ("dinic", "object"),
    ("dinic", "compiled"),
)


def _solve(circuit, k: int, phi: int, flow: str, kernel: str):
    """One label run at fixed phi; returns the outcome (timed stats)."""
    solver = LabelSolver(circuit, k, phi, flow=flow, kernel=kernel)
    return solver.run()


def _find_phi(circuit, k: int) -> int:
    """The smallest feasible phi, via a linear scan with the reference
    engine (the workload every matrix cell then replays)."""
    phi = 1
    while True:
        if _solve(circuit, k, phi, "ek", "object").feasible:
            return phi
        phi += 1


def handoff_bytes(circuit) -> Dict[str, int]:
    """Startup bytes per worker for each handoff strategy."""
    from repro.kernel.share import publish_csr

    compiled = circuit.compiled()
    sizes: Dict[str, int] = {
        # What a spawn-start worker receives without the kernel layer:
        # the full (derived-cache-stripped) circuit object graph.
        "pickled_circuit": len(pickle.dumps(circuit)),
        "csr_blob": len(compiled.to_bytes()),
    }
    handle = publish_csr(compiled)
    try:
        sizes[f"handle_{handle.transport}"] = handle.pickled_size()
    finally:
        handle.unlink()
    return sizes


def bench_circuit(
    circuit,
    k: int = 5,
    phi: Optional[int] = None,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Benchmark one circuit across the engine matrix.

    Returns one row dict per matrix cell (timings are the best of
    ``repeats`` runs — microbenchmarks gate on minima, not means, to
    shed scheduler noise) plus the handoff byte counts.
    """
    if phi is None:
        phi = _find_phi(circuit, k)
    reference: Optional[List[int]] = None
    cells: Dict[str, Dict[str, Any]] = {}
    for flow, kernel in MATRIX:
        best: Optional[Dict[str, Any]] = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            outcome = _solve(circuit, k, phi, flow, kernel)
            wall = time.perf_counter() - t0
            if not outcome.feasible:
                raise RuntimeError(
                    f"{circuit.name}: phi={phi} infeasible under "
                    f"flow={flow} kernel={kernel}"
                )
            if reference is None:
                reference = outcome.labels
            elif outcome.labels != reference:
                raise RuntimeError(
                    f"{circuit.name}: labels diverged under "
                    f"flow={flow} kernel={kernel} — timings meaningless"
                )
            stats = outcome.stats
            sample = {
                "t_total": wall,
                "t_flow": stats.t_flow,
                "t_expand": stats.t_expand,
                "flow_queries": stats.flow_queries,
                "dinic_phases": stats.dinic_phases,
                "arcs_advanced": stats.arcs_advanced,
            }
            if best is None or sample["t_total"] < best["t_total"]:
                best = sample
        assert best is not None
        queries = best["flow_queries"] or 1
        best["us_per_query"] = 1e6 * best["t_flow"] / queries
        cells[f"{flow}+{kernel}"] = best
    return {
        "circuit": circuit.name,
        "k": k,
        "phi": phi,
        "cells": cells,
        "handoff": handoff_bytes(circuit),
    }


def as_table(results: List[Dict[str, Any]]) -> dict:
    """The ``BENCH_microbench.json`` payload (bench-table schema)."""
    rows: Dict[str, Dict[str, Any]] = {}
    for res in results:
        for cell, sample in res["cells"].items():
            row = dict(sample)
            row["phi"] = res["phi"]
            rows[f"{res['circuit']}/{cell}"] = row
        for strategy, size in res["handoff"].items():
            rows.setdefault(f"{res['circuit']}/handoff", {})[strategy] = size
    return {
        "schema": SCHEMA_VERSION,
        "kind": "bench-table",
        "table": "microbench",
        "rows": rows,
    }


def render(results: List[Dict[str, Any]]) -> str:
    lines = ["== kernel microbench =="]
    header = (
        f"{'circuit/config':<24s} | {'t_flow':>9s} | {'t_expand':>9s} | "
        f"{'queries':>8s} | {'us/query':>9s} | {'phases':>7s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for res in results:
        for cell, s in res["cells"].items():
            lines.append(
                f"{res['circuit'] + '/' + cell:<24s} | "
                f"{s['t_flow']:>8.4f}s | {s['t_expand']:>8.4f}s | "
                f"{s['flow_queries']:>8d} | {s['us_per_query']:>9.1f} | "
                f"{s['dinic_phases']:>7d}"
            )
        parts = ", ".join(
            f"{name}={size}" for name, size in res["handoff"].items()
        )
        lines.append(f"{res['circuit'] + '/handoff':<24s} | {parts} bytes")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    from repro.bench import suite as bench_suite

    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.microbench",
        description="time the kernel engine matrix on suite circuits",
    )
    parser.add_argument(
        "--circuits",
        nargs="+",
        default=None,
        metavar="NAME",
        help="suite circuits to bench (default: the quick subset)",
    )
    parser.add_argument("--k", type=int, default=5, help="LUT input bound")
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per matrix cell; best-of is reported (default 3)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also write BENCH_microbench.json under this directory",
    )
    args = parser.parse_args(argv)
    names = args.circuits or bench_suite.quick_subset()
    results = []
    for name in names:
        circuit = bench_suite.build(name)
        results.append(bench_circuit(circuit, k=args.k, repeats=args.repeats))
    print(render(results))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, "BENCH_microbench.json")
        atomic_write_json(path, as_table(results), indent=2, sort_keys=False)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
