"""Kernel microbenchmarks: flow solve, expansion, and handoff bytes.

Usage::

    python -m repro.perf.microbench --circuits bbara dk16 \
        --out benchmarks/results

Times the hot kernel stages across the engine matrix using the
deterministic ``LabelStats`` telemetry the solver already collects:

* **flow** — aggregate min-cut solve time (``stats.t_flow``) and query
  count per flow engine (``dinic`` vs ``ek``) on an identical label
  workload, plus the Dinic work counters (``dinic_phases``,
  ``arcs_advanced``);
* **expansion** — partial-expansion time (``stats.t_expand``) per copy
  representation (``compiled`` CSR vs ``object`` tuples);
* **handoff** — startup bytes a parallel phi probe ships per worker:
  the pickled stripped circuit, the raw CSR blob, and the pickled
  :class:`~repro.kernel.share.CsrHandle` for each transport.

Every configuration runs the same ``(circuit, k, phi)`` label queries
(phi fixed at each circuit's known optimum via a reference run), and the
resulting labels are asserted identical across the whole matrix — a
configuration that diverged would make its timings meaningless.

Results go to stdout as a table and to ``BENCH_microbench.json``
(``bench-table`` schema, like the pytest-benchmark tables in
``benchmarks/results/``).  The CI microbench smoke job runs this on the
quick subset and archives the JSON.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys
import time
from typing import Any, Dict, List, Optional

from repro.compat import HAVE_NUMPY
from repro.core.labels import LabelSolver
from repro.kernel.expand import PackedCutArena, PackedExpansion, cut_on_packed
from repro.perf.report import SCHEMA_VERSION
from repro.resilience.atomic import atomic_write_json

#: (flow, kernel) pairs timed by :func:`bench_circuit` — the reference
#: configuration (old engine) first, then the default, then the numpy
#: batch kernel (skipped when the ``[vector]`` extra is missing: it
#: would silently fall back to ``compiled`` and report a duplicate).
MATRIX = (
    ("ek", "object"),
    ("ek", "compiled"),
    ("dinic", "object"),
    ("dinic", "compiled"),
) + ((("dinic", "vector"),) if HAVE_NUMPY else ())

#: Batch widths (stacked queries per arena solve) of the crossover sweep.
SWEEP_WIDTHS = (4, 16, 64)

#: Per-query network sizes (expansion copies) of the crossover sweep.
SWEEP_SIZES = (64, 256, 1024)


def _solve(circuit, k: int, phi: int, flow: str, kernel: str):
    """One label run at fixed phi; returns the outcome (timed stats)."""
    solver = LabelSolver(circuit, k, phi, flow=flow, kernel=kernel)
    return solver.run()


def _find_phi(circuit, k: int) -> int:
    """The smallest feasible phi, via a linear scan with the reference
    engine (the workload every matrix cell then replays)."""
    phi = 1
    while True:
        if _solve(circuit, k, phi, "ek", "object").feasible:
            return phi
        phi += 1


def handoff_bytes(circuit) -> Dict[str, int]:
    """Startup bytes per worker for each handoff strategy."""
    from repro.kernel.share import publish_csr

    compiled = circuit.compiled()
    sizes: Dict[str, int] = {
        # What a spawn-start worker receives without the kernel layer:
        # the full (derived-cache-stripped) circuit object graph.
        "pickled_circuit": len(pickle.dumps(circuit)),
        "csr_blob": len(compiled.to_bytes()),
    }
    handle = publish_csr(compiled)
    try:
        sizes[f"handle_{handle.transport}"] = handle.pickled_size()
    finally:
        handle.unlink()
    return sizes


_MASK64 = (1 << 64) - 1


def synthetic_expansion(
    nodes: int, seed: int, shift: int = 20
) -> PackedExpansion:
    """A deterministic pseudo-random DAG expansion with ``nodes`` copies.

    The crossover sweep (and the kernel differential tests) need many
    independent cut networks of controlled size without paying a label
    run per network.  Copies ``1..nodes-1`` each pick one or two
    parents among the already-emitted expandable copies via a 64-bit
    LCG seeded from ``seed`` — same seed, same expansion, on every
    platform.  Roughly the first 40% of copies become interior, the
    next ~12% candidates, the rest leaves, mimicking the deep-cone
    shape of real partial expansions (an INF core, a thin cuttable
    band, a wide source frontier).
    """
    state = (seed * 0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03) & _MASK64

    def rnd(n: int) -> int:
        nonlocal state
        state = (state * 6364136223846793005 + 1442695040888963407) & _MASK64
        return (state >> 33) % n

    exp = PackedExpansion(root=0, shift=shift)
    exp.interior.append(0)
    expandable = [0]
    n_interior = max(1, (nodes * 2) // 5)
    n_candidate = max(1, nodes // 8)
    for i in range(1, nodes):
        if i <= n_interior:
            tier = exp.interior
        elif i <= n_interior + n_candidate:
            tier = exp.candidates
        else:
            tier = exp.leaves
        for _ in range(1 + rnd(2)):
            exp.edges.append(i)
            exp.edges.append(expandable[rnd(len(expandable))])
        tier.append(i)
        if tier is not exp.leaves:
            expandable.append(i)
    return exp


def crossover_sweep(
    widths: Optional[Any] = None,
    sizes: Optional[Any] = None,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Scalar-vs-batched Dinic grid over (batch width x network size).

    Each grid cell stacks ``width`` synthetic expansions of ``nodes``
    copies apiece and times the full query burst both ways: a scalar
    :func:`cut_on_packed` loop (arena recycled, as the compiled kernel
    runs it) against one :func:`~repro.kernel.batch.solve_batch` call
    (arena build + level-BFS solve, as the vector kernel runs it).
    Cuts are asserted identical before any timing is trusted.  Best-of
    ``repeats`` per side, like the matrix cells.

    Returns the envelope payload ``repro.kernel.batch.crossover_nodes``
    reads: the grid rows plus ``crossover_nodes`` — the smallest
    network size whose widest-batch speedup, and that of every larger
    size measured, favours the vector kernel (``None`` when the scalar
    loop wins everywhere: auto then always resolves to ``compiled``).
    """
    if widths is None:
        widths = SWEEP_WIDTHS
    if sizes is None:
        sizes = SWEEP_SIZES
    if not HAVE_NUMPY:
        return {
            "numpy": False,
            "widths": list(widths),
            "sizes": list(sizes),
            "grid": [],
            "crossover_nodes": None,
        }
    from repro.kernel.batch import BatchCutArena, solve_batch

    grid: List[Dict[str, Any]] = []
    for width in widths:
        for nodes in sizes:
            queries = []
            for q in range(width):
                seed = width * 1_000_003 + nodes * 97 + q
                queries.append((synthetic_expansion(nodes, seed), 3 + q % 4))
            scalar_arena = PackedCutArena(flow="dinic")
            t_scalar = float("inf")
            scalar_cuts: List[Any] = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                scalar_cuts = [
                    cut_on_packed(exp, lim, scalar_arena)
                    for exp, lim in queries
                ]
                t_scalar = min(t_scalar, time.perf_counter() - t0)
            batch_arena = BatchCutArena()
            t_vector = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                batch_cuts = solve_batch(queries, batch_arena)
                t_vector = min(t_vector, time.perf_counter() - t0)
                if batch_cuts != scalar_cuts:
                    raise RuntimeError(
                        f"sweep cell width={width} nodes={nodes}: batched "
                        "cuts diverged from scalar — timings meaningless"
                    )
            grid.append(
                {
                    "width": width,
                    "nodes": nodes,
                    "t_scalar_us": round(1e6 * t_scalar, 2),
                    "t_vector_us": round(1e6 * t_vector, 2),
                    "speedup": round(t_scalar / t_vector, 3),
                }
            )
    # Crossover in network size, judged at the widest batch measured
    # (narrow batches never amortize the numpy call overhead, and the
    # label engine only batches wide rounds anyway): the smallest size
    # where the vector kernel wins and keeps winning at every larger
    # measured size.
    widest = max(widths)
    crossover: Optional[int] = None
    for row in grid:
        if row["width"] != widest:
            continue
        if row["speedup"] >= 1.0:
            if crossover is None:
                crossover = row["nodes"]
        else:
            crossover = None
    return {
        "numpy": True,
        "widths": list(widths),
        "sizes": list(sizes),
        "grid": grid,
        "crossover_nodes": crossover,
    }


def bench_circuit(
    circuit,
    k: int = 5,
    phi: Optional[int] = None,
    repeats: int = 3,
) -> Dict[str, Any]:
    """Benchmark one circuit across the engine matrix.

    Returns one row dict per matrix cell (timings are the best of
    ``repeats`` runs — microbenchmarks gate on minima, not means, to
    shed scheduler noise) plus the handoff byte counts.
    """
    if phi is None:
        phi = _find_phi(circuit, k)
    reference: Optional[List[int]] = None
    cells: Dict[str, Dict[str, Any]] = {}
    for flow, kernel in MATRIX:
        best: Optional[Dict[str, Any]] = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            outcome = _solve(circuit, k, phi, flow, kernel)
            wall = time.perf_counter() - t0
            if not outcome.feasible:
                raise RuntimeError(
                    f"{circuit.name}: phi={phi} infeasible under "
                    f"flow={flow} kernel={kernel}"
                )
            if reference is None:
                reference = outcome.labels
            elif outcome.labels != reference:
                raise RuntimeError(
                    f"{circuit.name}: labels diverged under "
                    f"flow={flow} kernel={kernel} — timings meaningless"
                )
            stats = outcome.stats
            sample = {
                "t_total": wall,
                "t_flow": stats.t_flow,
                "t_expand": stats.t_expand,
                "flow_queries": stats.flow_queries,
                "dinic_phases": stats.dinic_phases,
                "arcs_advanced": stats.arcs_advanced,
            }
            if best is None or sample["t_total"] < best["t_total"]:
                best = sample
        assert best is not None
        queries = best["flow_queries"] or 1
        best["us_per_query"] = 1e6 * best["t_flow"] / queries
        cells[f"{flow}+{kernel}"] = best
    return {
        "circuit": circuit.name,
        "k": k,
        "phi": phi,
        "cells": cells,
        "handoff": handoff_bytes(circuit),
    }


def as_table(
    results: List[Dict[str, Any]],
    envelope: Optional[Dict[str, Any]] = None,
) -> dict:
    """The ``BENCH_microbench.json`` payload (bench-table schema).

    ``envelope`` carries machine-derived operating guidance alongside
    the raw rows — today the :func:`crossover_sweep` result under
    ``"crossover"``, which ``repro.kernel.batch.crossover_nodes`` reads
    to resolve ``--kernel auto``.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    for res in results:
        for cell, sample in res["cells"].items():
            row = dict(sample)
            row["phi"] = res["phi"]
            rows[f"{res['circuit']}/{cell}"] = row
        for strategy, size in res["handoff"].items():
            rows.setdefault(f"{res['circuit']}/handoff", {})[strategy] = size
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": "bench-table",
        "table": "microbench",
        "rows": rows,
    }
    if envelope is not None:
        payload["envelope"] = envelope
    return payload


def render(results: List[Dict[str, Any]]) -> str:
    lines = ["== kernel microbench =="]
    header = (
        f"{'circuit/config':<24s} | {'t_flow':>9s} | {'t_expand':>9s} | "
        f"{'queries':>8s} | {'us/query':>9s} | {'phases':>7s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for res in results:
        for cell, s in res["cells"].items():
            lines.append(
                f"{res['circuit'] + '/' + cell:<24s} | "
                f"{s['t_flow']:>8.4f}s | {s['t_expand']:>8.4f}s | "
                f"{s['flow_queries']:>8d} | {s['us_per_query']:>9.1f} | "
                f"{s['dinic_phases']:>7d}"
            )
        parts = ", ".join(
            f"{name}={size}" for name, size in res["handoff"].items()
        )
        lines.append(f"{res['circuit'] + '/handoff':<24s} | {parts} bytes")
    return "\n".join(lines)


def render_sweep(sweep: Dict[str, Any]) -> str:
    lines = ["== scalar vs batched Dinic crossover =="]
    if not sweep.get("numpy", False):
        lines.append("numpy unavailable: sweep skipped, crossover=None")
        return "\n".join(lines)
    header = (
        f"{'width':>6s} | {'nodes':>6s} | {'scalar us':>10s} | "
        f"{'vector us':>10s} | {'speedup':>8s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in sweep["grid"]:
        lines.append(
            f"{row['width']:>6d} | {row['nodes']:>6d} | "
            f"{row['t_scalar_us']:>10.1f} | {row['t_vector_us']:>10.1f} | "
            f"{row['speedup']:>8.3f}"
        )
    lines.append(f"crossover_nodes = {sweep['crossover_nodes']}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    from repro.bench import suite as bench_suite

    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.microbench",
        description="time the kernel engine matrix on suite circuits",
    )
    parser.add_argument(
        "--circuits",
        nargs="+",
        default=None,
        metavar="NAME",
        help="suite circuits to bench (default: the quick subset)",
    )
    parser.add_argument("--k", type=int, default=5, help="LUT input bound")
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per matrix cell; best-of is reported (default 3)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also write BENCH_microbench.json under this directory",
    )
    parser.add_argument(
        "--no-sweep",
        action="store_true",
        help="skip the scalar-vs-batched crossover sweep",
    )
    args = parser.parse_args(argv)
    names = args.circuits or bench_suite.quick_subset()
    results = []
    for name in names:
        circuit = bench_suite.build(name)
        results.append(bench_circuit(circuit, k=args.k, repeats=args.repeats))
    print(render(results))
    envelope = None
    if not args.no_sweep:
        sweep = crossover_sweep(repeats=args.repeats)
        envelope = {"crossover": sweep}
        print(render_sweep(sweep))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, "BENCH_microbench.json")
        atomic_write_json(
            path, as_table(results, envelope), indent=2, sort_keys=False
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
