"""Regression gate: compare a perf report against a committed baseline.

Usage::

    python -m repro.perf.check benchmarks/baseline.json current.json \
        --tolerance 0.25

Compares every ``(circuit, algorithm)`` run present in *both* reports:

* **phi** — any increase is a quality regression (hard fail; the whole
  point of the paper is clock period, and phi is a small integer);
* **luts** — an increase beyond ``--tolerance`` (default 25%) fails;
* **seconds** — noisy across machines, so by default a slowdown beyond
  the tolerance is only *warned* about; pass ``--time-tolerance`` to turn
  the time comparison into a hard gate (e.g. on a dedicated perf host);
* **counters** — ``stats.flow_queries``, ``stats.updates``,
  ``stats.dinic_phases`` and ``stats.arcs_advanced`` are *deterministic*
  work measures (unlike wall clock), so a growth beyond
  ``--counter-tolerance`` (default 10%) is a hard fail; the schema-7
  batch counters (``batched_queries``, ``prefilter_hits``,
  ``batch_rounds``) join them, with the first two gated in the
  *opposite* direction — they count saved work, so a drop beyond the
  tolerance is the failure — as do the schema-8 persistent-cache
  counters (``outcome_cache_hits``, ``cache_probes_skipped``,
  ``cache_seeds``), all three inverted for the same reason (a warm run
  that stops hitting the cache has lost its fast path).  Counters gate
  only when
  the two runs are actually comparable: the report envelopes must
  declare the same label-engine configuration (``engine`` and
  ``warm_start``, absent in schema-1/2 baselines; ``flow`` and
  ``kernel``, absent in schema-3 baselines, match when both declare
  them) and the two runs the same ``workers`` count (a parallel search
  probes a different phi set, so its counters are not comparable
  run-to-run).  Incomparable counter growth only warns.  Pass
  ``--no-counters`` to skip counter checks entirely.

Resilience-aware (schema 2): a *degraded* current run (its budget
expired, so its phi/luts are best-known values rather than proven
optima) is flagged but its quality deltas only *warn* by default —
a budget expiry is an environmental condition, not a quality
regression.  Structured ``errors`` entries in the current report are
likewise flagged as warnings.  Pass ``--strict-resilience`` to turn
both into hard failures (e.g. on a dedicated perf host where nothing
should ever degrade).

Exit status: 0 clean, 1 on regressions (or on an unusable comparison —
e.g. no overlapping runs, which would otherwise pass vacuously).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.perf.report import load_report

RunKey = Tuple[str, str]  # (circuit, algorithm)


@dataclass
class Comparison:
    """Outcome of one baseline/current comparison."""

    regressions: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    compared: int = 0

    @property
    def ok(self) -> bool:
        return self.compared > 0 and not self.regressions


def _index(report: dict) -> Dict[RunKey, dict]:
    runs = {}
    for run in report.get("runs", []):
        runs[(str(run.get("circuit")), str(run.get("algorithm")))] = run
    return runs


#: Deterministic LabelStats counters gated by ``counter_tolerance``.
#: ``dinic_phases`` / ``arcs_advanced`` are zero under the EK flow engine
#: (the gate skips counters with a zero/absent baseline), so they only
#: bite on Dinic-vs-Dinic comparisons.  The batch counters
#: (``batched_queries`` / ``prefilter_hits`` / ``batch_rounds``, schema
#: 7) are zero under the scalar kernels and deterministic under
#: ``vector``, so they gate exactly the vector-vs-vector comparisons the
#: ``kernel`` envelope check admits — a regression in batching
#: effectiveness (fewer queries answered from the arena, fewer
#: prefilter skips) fails the gate even when wall clock stays flat.
GATED_COUNTERS = (
    "flow_queries",
    "updates",
    "dinic_phases",
    "arcs_advanced",
    "batched_queries",
    "prefilter_hits",
    "batch_rounds",
    "outcome_cache_hits",
    "cache_probes_skipped",
    "cache_seeds",
)

#: Gated counters where *shrinking* is the regression: these count work
#: saved — queries the batch kernel answered from the arena, flow solves
#: the prefilter skipped, and (schema 8) probes the persistent outcome
#: cache adopted, skipped or seeded — so a drop means a fast path
#: decayed.  The cache counters are zero on cold/cache-less runs, and
#: the gate skips zero-baseline counters, so they only bite on
#: warm-vs-warm comparisons (e.g. the CI cache-smoke job's second pass).
INVERTED_COUNTERS = frozenset({
    "batched_queries",
    "prefilter_hits",
    "outcome_cache_hits",
    "cache_probes_skipped",
    "cache_seeds",
})


def _same_declared(baseline: dict, current: dict, key: str) -> bool:
    """True unless *both* envelopes declare ``key`` and the values differ.

    Schema-3 baselines predate the ``flow`` / ``kernel`` fields (loaded
    as ``None``); an undeclared side is treated as unknown rather than
    as a mismatch, so old baselines keep their counter gate.
    """
    b_val, c_val = baseline.get(key), current.get(key)
    return b_val is None or c_val is None or b_val == c_val


def _counters_comparable(baseline: dict, current: dict) -> bool:
    """True when both envelopes declare the same engine configuration."""
    return (
        baseline.get("engine") is not None
        and baseline.get("engine") == current.get("engine")
        and baseline.get("warm_start") == current.get("warm_start")
        and _same_declared(baseline, current, "flow")
        and _same_declared(baseline, current, "kernel")
    )


def compare(
    baseline: dict,
    current: dict,
    tolerance: float = 0.25,
    time_tolerance: Optional[float] = None,
    strict_resilience: bool = False,
    counter_tolerance: Optional[float] = 0.10,
) -> Comparison:
    """Compare two perf reports; see the module docstring for the policy."""
    base_runs = _index(baseline)
    cur_runs = _index(current)
    result = Comparison()
    counters_hard = counter_tolerance is not None and _counters_comparable(
        baseline, current
    )
    if counter_tolerance is not None and not counters_hard:
        result.warnings.append(
            "engine configuration differs or is undeclared "
            f"(baseline engine={baseline.get('engine')!r} "
            f"warm_start={baseline.get('warm_start')!r} "
            f"flow={baseline.get('flow')!r} "
            f"kernel={baseline.get('kernel')!r}, current "
            f"engine={current.get('engine')!r} "
            f"warm_start={current.get('warm_start')!r} "
            f"flow={current.get('flow')!r} "
            f"kernel={current.get('kernel')!r}): counter growth "
            "only warns"
        )
    for err in current.get("errors", []):
        message = (
            f"{err.get('circuit')}/{err.get('algorithm')}: cell failed "
            f"({err.get('error')}: {err.get('message')}, "
            f"stage {err.get('stage')})"
        )
        if strict_resilience:
            result.regressions.append(message)
        else:
            result.warnings.append(message)
    for key in sorted(base_runs):
        if key not in cur_runs:
            continue
        circuit, algo = key
        tag = f"{circuit}/{algo}"
        base, cur = base_runs[key], cur_runs[key]
        result.compared += 1

        # A degraded run's phi/luts are best-known values under an
        # exhausted budget, not the search's proven optimum: quality
        # deltas only warn (unless the gate is strict about resilience).
        degraded = bool(cur.get("degraded"))
        quality_sink = (
            result.regressions
            if strict_resilience or not degraded
            else result.warnings
        )
        if degraded:
            reason = cur.get("degraded_reason") or "budget"
            result.warnings.append(f"{tag}: degraded run ({reason})")

        b_phi, c_phi = base.get("phi"), cur.get("phi")
        if b_phi is not None and c_phi is not None:
            if c_phi > b_phi:
                quality_sink.append(
                    f"{tag}: phi regressed {b_phi} -> {c_phi}"
                    + (" (degraded run)" if degraded else "")
                )
            elif c_phi < b_phi:
                result.improvements.append(
                    f"{tag}: phi improved {b_phi} -> {c_phi}"
                )

        b_luts, c_luts = base.get("luts"), cur.get("luts")
        if b_luts and c_luts is not None:
            if c_luts > b_luts * (1.0 + tolerance):
                quality_sink.append(
                    f"{tag}: luts regressed {b_luts} -> {c_luts} "
                    f"(> {tolerance:.0%} tolerance)"
                    + (" (degraded run)" if degraded else "")
                )
            elif c_luts < b_luts:
                result.improvements.append(
                    f"{tag}: luts improved {b_luts} -> {c_luts}"
                )

        b_sec, c_sec = base.get("seconds"), cur.get("seconds")
        if b_sec and c_sec is not None:
            gate = time_tolerance if time_tolerance is not None else tolerance
            if c_sec > b_sec * (1.0 + gate):
                message = (
                    f"{tag}: time {b_sec:.2f}s -> {c_sec:.2f}s "
                    f"(> {gate:.0%} tolerance)"
                )
                if time_tolerance is not None:
                    result.regressions.append(message)
                else:
                    result.warnings.append(message)

        if counter_tolerance is not None:
            same_workers = base.get("workers", 1) == cur.get("workers", 1)
            b_stats = base.get("stats") or {}
            c_stats = cur.get("stats") or {}
            for counter in GATED_COUNTERS:
                b_val, c_val = b_stats.get(counter), c_stats.get(counter)
                if not b_val or c_val is None:
                    continue
                if counter in INVERTED_COUNTERS:
                    regressed = c_val < b_val * (1.0 - counter_tolerance)
                    improved = c_val > b_val
                else:
                    regressed = c_val > b_val * (1.0 + counter_tolerance)
                    improved = c_val < b_val
                if regressed:
                    message = (
                        f"{tag}: {counter} regressed {b_val} -> {c_val} "
                        f"(> {counter_tolerance:.0%} tolerance)"
                    )
                    if counters_hard and same_workers:
                        quality_sink.append(
                            message
                            + (" (degraded run)" if degraded else "")
                        )
                    elif not same_workers:
                        result.warnings.append(
                            message
                            + f" (workers {base.get('workers', 1)} vs "
                            f"{cur.get('workers', 1)}: not comparable)"
                        )
                    else:
                        result.warnings.append(message)
                elif improved and same_workers:
                    # A different worker count probes a different phi
                    # set, so a lower counter is no more meaningful
                    # than a higher one -- stay silent.
                    result.improvements.append(
                        f"{tag}: {counter} improved {b_val} -> {c_val}"
                    )
    return result


def render(comparison: Comparison) -> str:
    lines = [f"compared {comparison.compared} run(s)"]
    for text in comparison.improvements:
        lines.append(f"  improved: {text}")
    for text in comparison.warnings:
        lines.append(f"  WARNING:  {text}")
    for text in comparison.regressions:
        lines.append(f"  REGRESSION: {text}")
    lines.append("status: " + ("OK" if comparison.ok else "FAIL"))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.check",
        description="compare a perf report against a committed baseline",
    )
    parser.add_argument("baseline", help="baseline report JSON")
    parser.add_argument("current", help="current report JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative slack for LUT count (default 0.25)",
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=None,
        help="gate on run time too, with this relative slack "
        "(default: time slowdowns only warn)",
    )
    parser.add_argument(
        "--strict-resilience",
        action="store_true",
        help="hard-fail on degraded runs and structured error entries "
        "(default: flag them as warnings)",
    )
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=0.10,
        help="relative slack for the deterministic work counters "
        "(stats.flow_queries, stats.updates, stats.dinic_phases, "
        "stats.arcs_advanced; default 0.10); hard gate only when both "
        "reports declare the same engine configuration and the runs "
        "the same worker count",
    )
    parser.add_argument(
        "--no-counters",
        action="store_true",
        help="skip the counter comparison entirely",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_report(args.baseline)
        current = load_report(args.current)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    comparison = compare(
        baseline,
        current,
        tolerance=args.tolerance,
        time_tolerance=args.time_tolerance,
        strict_resilience=args.strict_resilience,
        counter_tolerance=None if args.no_counters else args.counter_tolerance,
    )
    print(render(comparison))
    if comparison.compared == 0:
        print(
            "error: no overlapping (circuit, algorithm) runs to compare",
            file=sys.stderr,
        )
        return 1
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    sys.exit(main())
