"""Wall-clock helpers for the run telemetry.

The hot paths (:class:`repro.core.labels.LabelSolver`) accumulate raw
``time.perf_counter`` deltas directly to keep per-query overhead at two
calls; everything coarser uses :class:`Stopwatch`.
"""

from __future__ import annotations

import time
from typing import Optional


class Stopwatch:
    """A context-manager stopwatch that accumulates across uses.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True

    Re-entering accumulates, so one instance can time every occurrence of
    a stage inside a loop and report the stage total.
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._t0: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._t0 is not None:
            self.elapsed += time.perf_counter() - self._t0
            self._t0 = None

    @property
    def running(self) -> bool:
        return self._t0 is not None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._t0 = None
