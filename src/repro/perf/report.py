"""JSON run reports: the machine-readable perf/quality telemetry schema.

Schema (version 1) — one *suite report* wraps any number of *mapper
runs*::

    {
      "schema": 1,
      "kind": "suite",                 # or "map" for a single-run report
      "python": "3.11.7", "platform": "Linux-...",
      "k": 5, "workers": 1,
      "runs": [
        {
          "circuit": "bbara", "algorithm": "turbomap",
          "k": 5, "workers": 1,
          "gates": 462, "ffs": 10,     # input circuit size
          "phi": 5, "luts": 522,       # quality (lower is better)
          "seconds": 0.61,             # end-to-end wall clock
          "search": {
            "t_search": 0.55, "t_mapping": 0.06,
            "probes": [3, 4, 5, 10, 20], "n_probes": 5
          },
          "stats": {                   # aggregated LabelStats telemetry
            "rounds": ..., "updates": ..., "flow_queries": ...,
            "cache_hits": ..., "pld_checks": ...,
            "resyn_calls": ..., "resyn_wins": ...,
            "t_total": ..., "t_expand": ..., "t_flow": ..., "t_pld": ...
          }
        }, ...
      ]
    }

``benchmarks/baseline.json`` is a committed suite report; CI regenerates
a fresh one and gates on :mod:`repro.perf.check`.  The pytest-benchmark
harness writes per-table ``BENCH_*.json`` siblings of the rendered text
tables (see ``benchmarks/conftest.py``) so the perf trajectory is
diffable across PRs.
"""

from __future__ import annotations

import dataclasses
import json
import platform
from typing import IO, Dict, List, Optional, Union

SCHEMA_VERSION = 1


def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def mapper_run(
    result,
    circuit=None,
    seconds: Optional[float] = None,
) -> dict:
    """Serialize one :class:`~repro.core.driver.SeqMapResult` to a dict.

    ``circuit`` (the *input* circuit) adds size context; ``seconds``
    records the caller's end-to-end wall clock (defaults to the result's
    own search + mapping time).
    """
    run: dict = {
        "circuit": circuit.name if circuit is not None else result.mapped.name,
        "algorithm": result.algorithm,
        "workers": getattr(result, "workers", 1),
        "phi": result.phi,
        "luts": result.n_luts,
        "seconds": round(
            seconds if seconds is not None else result.t_total, 6
        ),
        "search": {
            "t_search": round(result.t_search, 6),
            "t_mapping": round(result.t_mapping, 6),
            "t_verify": round(getattr(result, "t_verify", 0.0), 6),
            "probes": sorted(result.outcomes),
            "n_probes": len(result.outcomes),
        },
        "stats": {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in dataclasses.asdict(result.total_stats).items()
        },
    }
    if circuit is not None:
        run["gates"] = circuit.n_gates
        run["ffs"] = circuit.n_ffs
    cert = getattr(result, "certificate", None)
    if cert is not None:
        # Record that the run was verified, without the full finding list
        # (reports stay small; `repro lint` re-derives details on demand).
        run["certificate"] = {
            key: cert[key]
            for key in ("verified", "rules", "errors", "warnings", "t_verify")
            if key in cert
        }
    return run


def suite_report(
    runs: List[dict],
    k: Optional[int] = None,
    workers: int = 1,
    kind: str = "suite",
) -> dict:
    """Wrap mapper runs in a schema-versioned report envelope."""
    report = {"schema": SCHEMA_VERSION, "kind": kind}
    report.update(_environment())
    if k is not None:
        report["k"] = k
    report["workers"] = workers
    report["runs"] = runs
    return report


def write_report(report: dict, path_or_file: Union[str, IO[str]]) -> None:
    """Write a report as pretty-printed JSON (trailing newline included)."""
    if hasattr(path_or_file, "write"):
        json.dump(report, path_or_file, indent=2, sort_keys=False)
        path_or_file.write("\n")
        return
    with open(path_or_file, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_report(path: str) -> dict:
    """Read a report, tolerating both envelopes and bare run lists."""
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, list):  # bare run list
        data = {"schema": SCHEMA_VERSION, "kind": "suite", "runs": data}
    if "runs" not in data or not isinstance(data["runs"], list):
        raise ValueError(f"{path}: not a perf report (missing 'runs' list)")
    return data
