"""JSON run reports: the machine-readable perf/quality telemetry schema.

Schema (version 8) — one *suite report* wraps any number of *mapper
runs* plus the structured *errors* of cells that failed::

    {
      "schema": 8,
      "kind": "suite",                 # or "map" for a single-run report
      "python": "3.11.7", "platform": "Linux-...",
      "k": 5, "workers": 1,
      "engine": "worklist",            # label engine of the phi probes
      "warm_start": true,              # cross-probe label seeding
      "flow": "dinic",                 # max-flow engine (dinic / ek)
      "kernel": "compiled",            # copy representation (compiled
                                       # CSR / object tuples / vector —
                                       # the numpy batch kernel)
      "service": {                     # v6: set when the runs came out
                                       # of a served instance
        "state_dir": "...",            # (repro.serve); None/absent for
        "journal": {...}, "stats": {...},   # offline sweeps
        "recovered": {...}
      },
      "cache": {                       # v8: snapshot of the persistent
        "entries": 16, "hits": 32,     # outcome cache (repro.cache) the
        "misses": 0, "seeds": 5, ...   # sweep ran against; None/absent
      },                               # for cache-less runs
      "runs": [
        {
          "circuit": "bbara", "algorithm": "turbomap",
          "k": 5, "workers": 1,
          "job": {                     # v6: the serving envelope — only
            "id": "j000017",           # on runs executed as service jobs
            "attempts": 2,             # 1 + crash replays
            "probes_journaled": 5,     # checkpoints adopted on resume
            "signature": "sha256...",  # result content signature (the
                                       # crash-recovery differential key)
            "store": {"blob_reused": true, "recompiled": false}
          },
          "gates": 462, "ffs": 10,     # input circuit size
          "phi": 5, "luts": 522,       # quality (lower is better)
          "seconds": 0.61,             # end-to-end wall clock
          "attempts": 1,               # search-backend executions
          "degraded": false,           # true: phi is best-known, not
                                       # proven optimal (budget expired);
                                       # adds "degraded_reason"
          "incremental": false,        # true: the phi search repaired a
                                       # previous result (repro.incremental)
                                       # instead of probing cold; the
                                       # repair counters land in "stats"
                                       # (dirty_nodes, labels_reused,
                                       # witnesses_revalidated,
                                       # sccs_skipped)
          "search": {
            "t_search": 0.55, "t_mapping": 0.06,
            "probes": [3, 4, 5, 10, 20], "n_probes": 5
          },
          "stats": {                   # aggregated LabelStats telemetry
            "rounds": ..., "updates": ..., "flow_queries": ...,
            "cache_hits": ..., "pld_checks": ...,
            "resyn_calls": ..., "resyn_wins": ...,
            "warm_seeded": ..., "warm_savings": ...,
            "expansions_reused": ...,
            "dinic_phases": ..., "arcs_advanced": ...,
            "batched_queries": ...,    # v7: vector-kernel batching —
            "prefilter_hits": ...,     # queries answered from a batch,
            "batch_rounds": ...,       # skipped by the height prefilter,
                                       # and arena solves (all zero under
                                       # scalar kernels)
            "outcome_cache_hits": ..., # v8: persistent-cache telemetry —
            "cache_probes_skipped": ...,  # probes adopted from / skipped
            "cache_seeds": ...,        # via repro.cache, and probes the
                                       # cache seeded (zero without it)
            "t_total": ..., "t_expand": ..., "t_flow": ..., "t_pld": ...
          }
        }, ...
      ],
      "errors": [                      # cells the fault boundary caught
        {
          "circuit": "dk16", "algorithm": "turbomap",
          "error": "InjectedFault",    # exception type name
          "message": "...", "stage": "map", "elapsed": 0.31
        }, ...
      ]
    }

Version 1 reports (no ``errors``, ``attempts`` or ``degraded``),
version 2 reports (no ``engine`` / ``warm_start`` envelope fields, no
warm-start counters in ``stats``), version 3 reports (no ``flow`` /
``kernel`` envelope fields, no Dinic counters in ``stats``), version 4
reports (no ``incremental`` run field, no repair counters in
``stats``), version 5 reports (no ``service`` envelope, no per-run
``job`` objects), version 6 reports (no vector-kernel batch
counters in ``stats``) and version 7 reports (no ``cache`` envelope,
no persistent-cache counters in ``stats``) load fine:
:func:`load_report` fills the new envelope fields in, the regression
gate treats absent run fields as non-degraded, and the counter gate
only compares counters when both reports declare the same engine
configuration.

``benchmarks/baseline.json`` is a committed suite report; CI regenerates
a fresh one and gates on :mod:`repro.perf.check`.  The pytest-benchmark
harness writes per-table ``BENCH_*.json`` siblings of the rendered text
tables (see ``benchmarks/conftest.py``) so the perf trajectory is
diffable across PRs.  All path writes go through
:func:`repro.resilience.atomic.atomic_write_json`, so an interrupted
writer never corrupts a previously good report.
"""

from __future__ import annotations

import dataclasses
import json
import platform
from typing import IO, Dict, List, Optional, Union

from repro.resilience.atomic import atomic_write_json

SCHEMA_VERSION = 8


def _environment() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def mapper_run(
    result,
    circuit=None,
    seconds: Optional[float] = None,
    job: Optional[dict] = None,
) -> dict:
    """Serialize one :class:`~repro.core.driver.SeqMapResult` to a dict.

    ``circuit`` (the *input* circuit) adds size context; ``seconds``
    records the caller's end-to-end wall clock (defaults to the result's
    own search + mapping time).  ``job`` (schema 6) attaches the serving
    envelope when the run executed as a :mod:`repro.serve` job: id,
    attempts (1 + crash replays), journaled-checkpoint count, result
    signature, and store-hygiene flags.
    """
    run: dict = {
        "circuit": circuit.name if circuit is not None else result.mapped.name,
        "algorithm": result.algorithm,
        "workers": getattr(result, "workers", 1),
        "phi": result.phi,
        "luts": result.n_luts,
        "seconds": round(
            seconds if seconds is not None else result.t_total, 6
        ),
        "search": {
            "t_search": round(result.t_search, 6),
            "t_mapping": round(result.t_mapping, 6),
            "t_verify": round(getattr(result, "t_verify", 0.0), 6),
            "probes": sorted(result.outcomes),
            "n_probes": len(result.outcomes),
        },
        "stats": {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in dataclasses.asdict(result.total_stats).items()
        },
    }
    if job is not None:
        run["job"] = dict(job)
    run["attempts"] = getattr(result, "attempts", 1)
    run["degraded"] = bool(getattr(result, "degraded", False))
    run["incremental"] = bool(getattr(result, "incremental", False))
    if run["degraded"]:
        run["degraded_reason"] = getattr(result, "degraded_reason", None)
    events = getattr(result, "resilience_events", None)
    if events:
        run["resilience_events"] = events
    if circuit is not None:
        run["gates"] = circuit.n_gates
        run["ffs"] = circuit.n_ffs
    cert = getattr(result, "certificate", None)
    if cert is not None:
        # Record that the run was verified, without the full finding list
        # (reports stay small; `repro lint` re-derives details on demand).
        run["certificate"] = {
            key: cert[key]
            for key in ("verified", "rules", "errors", "warnings", "t_verify")
            if key in cert
        }
        # Compact summaries of the independent certificates (the full
        # blobs — offsets, witness cycles — stay on the result object).
        sched = cert.get("schedule_certificate")
        if isinstance(sched, dict):
            run["certificate"]["schedule_certificate"] = {
                key: sched[key]
                for key in ("phi", "feasible", "makespan")
                if key in sched
            }
        cyc = cert.get("cycle_certificate")
        if isinstance(cyc, dict):
            run["certificate"]["cycle_certificate"] = {
                key: cyc[key]
                for key in ("phi", "feasible", "mcm", "bound", "skipped")
                if key in cyc
            }
    return run


def error_entry(
    circuit: str,
    algorithm: str,
    exc: BaseException,
    stage: str = "map",
    elapsed: float = 0.0,
) -> dict:
    """A structured error record for a failed (circuit, algorithm) cell."""
    return {
        "circuit": circuit,
        "algorithm": algorithm,
        "error": type(exc).__name__,
        "message": str(exc),
        "stage": stage,
        "elapsed": round(elapsed, 6),
    }


def suite_report(
    runs: List[dict],
    k: Optional[int] = None,
    workers: int = 1,
    kind: str = "suite",
    errors: Optional[List[dict]] = None,
    engine: str = "worklist",
    warm_start: bool = True,
    flow: str = "dinic",
    kernel: str = "compiled",
    service: Optional[dict] = None,
    cache: Optional[dict] = None,
) -> dict:
    """Wrap mapper runs in a schema-versioned report envelope.

    ``service`` (schema 6) attaches the serving envelope — the
    :meth:`repro.serve.service.MappingService.health` snapshot of the
    instance the runs came out of — for reports assembled from served
    jobs; offline sweeps carry ``null``.  ``cache`` (schema 8) attaches
    a :meth:`repro.cache.OutcomeCache.stats` snapshot when the sweep
    ran against a persistent outcome cache; cache-less runs carry
    ``null``.
    """
    report = {"schema": SCHEMA_VERSION, "kind": kind}
    report.update(_environment())
    if k is not None:
        report["k"] = k
    report["workers"] = workers
    report["engine"] = engine
    report["warm_start"] = warm_start
    report["flow"] = flow
    report["kernel"] = kernel
    report["service"] = dict(service) if service is not None else None
    report["cache"] = dict(cache) if cache is not None else None
    report["runs"] = runs
    report["errors"] = list(errors) if errors else []
    return report


def write_report(report: dict, path_or_file: Union[str, IO[str]]) -> None:
    """Write a report as pretty-printed JSON (trailing newline included).

    Path targets are written atomically (temp sibling + ``os.replace``),
    so an interrupted write leaves any previous report intact.
    """
    if hasattr(path_or_file, "write"):
        json.dump(report, path_or_file, indent=2, sort_keys=False)
        path_or_file.write("\n")
        return
    atomic_write_json(path_or_file, report, indent=2, sort_keys=False)


def load_report(path: str) -> dict:
    """Read a report, tolerating envelopes, bare run lists, schema 1/2."""
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, list):  # bare run list
        data = {"schema": SCHEMA_VERSION, "kind": "suite", "runs": data}
    if "runs" not in data or not isinstance(data["runs"], list):
        raise ValueError(f"{path}: not a perf report (missing 'runs' list)")
    data.setdefault("errors", [])  # absent in schema-1 reports
    # Absent in schema-1/2 reports: an unknown engine configuration (the
    # counter gate then skips hard counter comparisons).
    data.setdefault("engine", None)
    data.setdefault("warm_start", None)
    # Absent in schema-3 reports: an unknown flow/kernel configuration.
    data.setdefault("flow", None)
    data.setdefault("kernel", None)
    # Absent in schema-5 reports (and offline schema-6 sweeps): the runs
    # did not come out of a served instance.
    data.setdefault("service", None)
    # Absent in schema-7 reports: no persistent outcome cache in play.
    data.setdefault("cache", None)
    return data
