"""Sequential circuits as retiming graphs.

Following Leiserson-Saxe [16] and the paper's Section 2, a sequential
circuit is a directed graph ``G(V, E, W)``: each node is a primary input
(PI), primary output (PO) or gate; each edge ``e(u, v)`` carries a
non-negative integer weight ``w(e)`` — the number of flip-flops on the
connection from ``u`` to ``v``.  Combinational logic lives in the gates'
node functions (packed truth tables over the ordered fanins); flip-flops
exist *only* as edge weights, which is exactly the representation retiming
manipulates.

Structural invariants (checked by :meth:`SeqCircuit.check`):

* every cycle carries at least one register (no combinational loops);
* PIs have no fanins; POs have exactly one fanin and no fanouts;
* a gate's function arity equals its fanin count.

The same class represents both the input gate-level network (where "gate"
means a K-bounded logic gate) and the mapped LUT network (where "gate"
means a K-LUT); the unit delay model assigns every gate delay 1 and
PIs/POs delay 0.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.boolfn.truthtable import TruthTable


class NodeKind(enum.Enum):
    """Role of a node in the retiming graph."""

    PI = "pi"
    PO = "po"
    GATE = "gate"


@dataclass(frozen=True)
class Pin:
    """One fanin connection: source node id and register count."""

    src: int
    weight: int = 0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("edge weight (register count) must be >= 0")


@dataclass(frozen=True)
class Edit:
    """One journaled structural mutation of a :class:`SeqCircuit`.

    ``kind`` is ``"add"`` (a node was appended; ``nid`` is its new id)
    or ``"rewire"`` (the fanins of existing node ``nid`` changed);
    ``pins`` is the node's fanin list *after* the edit as plain
    ``(src, weight)`` tuples.  Consumed by the incremental remapping
    layer (:mod:`repro.incremental`), which patches the compiled CSR
    kernel and computes the dirty region from these records instead of
    recompiling and resolving the whole circuit.
    """

    kind: str
    nid: int
    pins: Tuple[Tuple[int, int], ...]


@dataclass
class Node:
    """A node of the retiming graph.  Use :class:`SeqCircuit` to build."""

    name: str
    kind: NodeKind
    func: Optional[TruthTable]
    fanins: List[Pin]

    @property
    def delay(self) -> int:
        """Unit delay model: gates cost 1, PIs and POs cost 0."""
        return 1 if self.kind is NodeKind.GATE else 0


class SeqCircuit:
    """A sequential circuit / retiming graph with named nodes.

    Nodes are referenced by dense integer ids (their creation order).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._nodes: List[Node] = []
        self._index: Dict[str, int] = {}
        self._fanouts: Optional[List[List[Tuple[int, int]]]] = None
        self._fanin_pairs: Optional[List[List[Tuple[int, int]]]] = None
        self._kind_list: Optional[List[NodeKind]] = None
        self._compiled: Optional[object] = None
        self._journal: Optional[List[Edit]] = None

    def __getstate__(self) -> Dict[str, Any]:
        # Derived caches (fanouts, fanin pairs, kinds, the compiled CSR
        # kernel) are cheap to rebuild and can be large; dropping them
        # keeps pickles small — notably the circuit payload shipped to
        # probe worker processes, which receive the compiled kernel
        # through the zero-copy channel instead
        # (:mod:`repro.kernel.share`).
        state = self.__dict__.copy()
        state["_fanouts"] = None
        state["_fanin_pairs"] = None
        state["_kind_list"] = None
        state["_compiled"] = None
        # The journal records *local* mutations; a pickled copy starts a
        # new life (typically in a worker process) with no pending edits.
        state["_journal"] = None
        return state

    # ------------------------------------------------------------------
    # Mutation journal
    # ------------------------------------------------------------------
    def begin_journal(self) -> None:
        """Start (or reset) recording structural mutations.

        While enabled, every node insertion and every *effective*
        rewiring (no-op rewires are skipped entirely, see
        :meth:`set_fanins`) appends an :class:`Edit` record.  The
        incremental remapping layer drains the records with
        :meth:`take_journal` to patch the compiled CSR kernel and bound
        the dirty region, instead of recompiling from scratch.
        """
        self._journal = []

    def journaling(self) -> bool:
        """True while a mutation journal is recording."""
        return self._journal is not None

    def take_journal(self) -> List[Edit]:
        """Drain and return the recorded edits; recording continues.

        Raises :class:`ValueError` if :meth:`begin_journal` was never
        called — a silent empty answer would let callers believe no
        edits happened when in fact none were being recorded.
        """
        if self._journal is None:
            raise ValueError(
                f"{self.name}: no mutation journal; call begin_journal() first"
            )
        edits = self._journal
        self._journal = []
        return edits

    def end_journal(self) -> None:
        """Stop recording mutations and discard any pending records."""
        self._journal = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add(self, node: Node) -> int:
        if node.name in self._index:
            raise ValueError(f"duplicate node name {node.name!r}")
        nid = len(self._nodes)
        self._nodes.append(node)
        self._index[node.name] = nid
        self._fanouts = None
        self._fanin_pairs = None
        self._kind_list = None
        self._compiled = None
        if self._journal is not None:
            self._journal.append(
                Edit("add", nid, tuple((p.src, p.weight) for p in node.fanins))
            )
        return nid

    def add_pi(self, name: str) -> int:
        """Add a primary input."""
        return self._add(Node(name, NodeKind.PI, None, []))

    def add_po(self, name: str, src: int, weight: int = 0) -> int:
        """Add a primary output observing ``src`` through ``weight`` FFs."""
        self._check_id(src)
        return self._add(Node(name, NodeKind.PO, None, [Pin(src, weight)]))

    def add_gate(
        self,
        name: str,
        func: TruthTable,
        fanins: Sequence[Tuple[int, int]],
    ) -> int:
        """Add a gate computing ``func`` over ``fanins`` = ``(src, weight)``.

        Fanin order matches the function's variable order: fanin ``i`` is
        variable ``i`` of ``func``.
        """
        if func.n != len(fanins):
            raise ValueError(
                f"gate {name!r}: function arity {func.n} != {len(fanins)} fanins"
            )
        pins = []
        for src, weight in fanins:
            self._check_id(src)
            pins.append(Pin(src, weight))
        return self._add(Node(name, NodeKind.GATE, func, pins))

    def add_gate_placeholder(self, name: str, func: TruthTable) -> int:
        """Add a gate with unwired fanins (two-phase construction).

        Sequential feedback (a gate reading its own output through
        registers) makes single-pass construction impossible; create all
        gates first, then wire them with :meth:`set_fanins`.  The circuit
        is invalid (``check`` fails) until every placeholder is wired.
        """
        return self._add(Node(name, NodeKind.GATE, func, []))

    def set_fanins(self, nid: int, fanins: Sequence[Tuple[int, int]]) -> None:
        """Wire (or rewire) the fanins of gate or PO ``nid``."""
        node = self.node(nid)
        if node.kind is NodeKind.PI:
            raise ValueError("PIs have no fanins")
        if (
            node.kind is NodeKind.GATE
            and node.func is not None
            and node.func.n != len(fanins)
        ):
            raise ValueError(
                f"gate {node.name!r}: function arity {node.func.n} != "
                f"{len(fanins)} fanins"
            )
        if node.kind is NodeKind.PO and len(fanins) != 1:
            raise ValueError("POs take exactly one fanin")
        pins = []
        for src, weight in fanins:
            self._check_id(src)
            pins.append(Pin(src, weight))
        if pins == node.fanins:
            # No-op rewire (e.g. re-adding an identical fanin pin):
            # keep the derived caches — notably the compiled CSR kernel,
            # whose wholesale invalidation is exactly what incremental
            # remapping exists to avoid — and journal nothing.
            return
        node.fanins = pins
        self._fanouts = None
        self._fanin_pairs = None
        self._compiled = None
        if self._journal is not None:
            self._journal.append(
                Edit("rewire", nid, tuple((p.src, p.weight) for p in pins))
            )

    def rewire_pin(self, nid: int, index: int, src: int, weight: int) -> bool:
        """Rewire one fanin pin of ``nid``; return False for a no-op.

        The k-gate-edit convenience entry used by edit-and-remap
        callers (and the edit fuzzer): replaces fanin ``index`` with
        ``(src, weight)`` through :meth:`set_fanins`, so cache
        invalidation, no-op detection and journaling all apply.
        """
        node = self.node(nid)
        if not 0 <= index < len(node.fanins):
            raise ValueError(
                f"{node.name!r}: fanin index {index} out of range "
                f"(node has {len(node.fanins)} fanins)"
            )
        pins = [(p.src, p.weight) for p in node.fanins]
        if pins[index] == (src, weight):
            return False
        pins[index] = (src, weight)
        self.set_fanins(nid, pins)
        return True

    def _check_id(self, nid: int) -> None:
        if not 0 <= nid < len(self._nodes):
            raise ValueError(f"unknown node id {nid}")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, nid: int) -> Node:
        self._check_id(nid)
        return self._nodes[nid]

    def id_of(self, name: str) -> int:
        return self._index[name]

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def node_ids(self) -> range:
        return range(len(self._nodes))

    def kind(self, nid: int) -> NodeKind:
        return self._nodes[nid].kind

    def name_of(self, nid: int) -> str:
        return self._nodes[nid].name

    def fanins(self, nid: int) -> List[Pin]:
        return self._nodes[nid].fanins

    def func(self, nid: int) -> Optional[TruthTable]:
        return self._nodes[nid].func

    @property
    def pis(self) -> List[int]:
        return [i for i, n in enumerate(self._nodes) if n.kind is NodeKind.PI]

    @property
    def pos(self) -> List[int]:
        return [i for i, n in enumerate(self._nodes) if n.kind is NodeKind.PO]

    @property
    def gates(self) -> List[int]:
        return [i for i, n in enumerate(self._nodes) if n.kind is NodeKind.GATE]

    @property
    def n_gates(self) -> int:
        return sum(1 for n in self._nodes if n.kind is NodeKind.GATE)

    @property
    def n_ffs(self) -> int:
        """Flip-flop count with fanout sharing.

        A driver whose fanout edges carry weights ``w1..wm`` is realized
        with a register chain of length ``max(wi)`` tapped at each depth,
        so the circuit's register count is the sum of per-driver maxima.
        This matches the latch count of the equivalent BLIF netlist.
        """
        total = 0
        for nid in self.node_ids():
            outs = self.fanouts(nid)
            if outs:
                total += max(w for _dst, w in outs)
        return total

    @property
    def total_edge_weight(self) -> int:
        """Sum of all edge weights (the retiming-graph ``W`` total)."""
        return sum(p.weight for n in self._nodes for p in n.fanins)

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(src, dst, weight)`` for every edge."""
        for dst, node in enumerate(self._nodes):
            for pin in node.fanins:
                yield pin.src, dst, pin.weight

    def fanouts(self, nid: int) -> List[Tuple[int, int]]:
        """Fanout connections of ``nid`` as ``(dst, weight)`` pairs."""
        if self._fanouts is None:
            table: List[List[Tuple[int, int]]] = [[] for _ in self._nodes]
            for src, dst, weight in self.edges():
                table[src].append((dst, weight))
            self._fanouts = table
        return self._fanouts[nid]

    def fanin_pairs(self) -> List[List[Tuple[int, int]]]:
        """Per-node fanin adjacency as plain ``(src, weight)`` tuples.

        A flat, cached mirror of :meth:`fanins` for hot traversal loops
        (the expanded-circuit construction walks fanins once per visited
        copy): tuple unpacking avoids one :class:`Pin` attribute access
        per edge.  Invalidated by any structural mutation.
        """
        if self._fanin_pairs is None:
            self._fanin_pairs = [
                [(p.src, p.weight) for p in n.fanins] for n in self._nodes
            ]
        return self._fanin_pairs

    def kind_list(self) -> List[NodeKind]:
        """Per-node kinds as a dense list, cached.

        The hot traversal loops (one expanded-circuit construction per
        flow query) classify every visited copy by its node's kind;
        indexing this cached list replaces a method call plus attribute
        access per copy.  Invalidated by node insertion (rewiring keeps
        kinds intact).
        """
        if self._kind_list is None:
            self._kind_list = [n.kind for n in self._nodes]
        return self._kind_list

    def compiled(self) -> Any:
        """The circuit compiled into flat CSR arrays, cached.

        Returns the :class:`repro.kernel.csr.CompiledCircuit` backing
        the compiled label kernel; built on first use and invalidated
        by any structural mutation (node insertion or rewiring), like
        :meth:`fanin_pairs`.
        """
        if self._compiled is None:
            from repro.kernel.csr import compile_circuit

            self._compiled = compile_circuit(self)
        return self._compiled

    def adopt_compiled(self, compiled: object) -> None:
        """Install an externally built compiled kernel (worker handoff).

        Probe worker processes receive the CSR arrays through the
        zero-copy channel (:mod:`repro.kernel.share`) and adopt them
        here so no worker recompiles the kernel.  The caller guarantees
        the arrays describe this circuit's current structure.
        """
        self._compiled = compiled

    def max_fanin(self) -> int:
        return max((len(n.fanins) for n in self._nodes if n.kind is NodeKind.GATE), default=0)

    def is_k_bounded(self, k: int) -> bool:
        """True when every gate has at most ``k`` fanins."""
        return self.max_fanin() <= k

    def stats(self) -> Dict[str, int]:
        return {
            "pis": len(self.pis),
            "pos": len(self.pos),
            "gates": self.n_gates,
            "ffs": self.n_ffs,
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"SeqCircuit({self.name!r}: {s['pis']} PI, {s['pos']} PO, "
            f"{s['gates']} gates, {s['ffs']} FFs)"
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def comb_topo_order(self) -> List[int]:
        """Topological order of the zero-weight (combinational) subgraph.

        Raises :class:`ValueError` when a combinational cycle exists.
        """
        n = len(self._nodes)
        indeg = [0] * n
        comb_fanouts: List[List[int]] = [[] for _ in range(n)]
        for src, dst, weight in self.edges():
            if weight == 0:
                indeg[dst] += 1
                comb_fanouts[src].append(dst)
        order = [i for i in range(n) if indeg[i] == 0]
        head = 0
        while head < len(order):
            u = order[head]
            head += 1
            for v in comb_fanouts[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    order.append(v)
        if len(order) != n:
            raise ValueError(f"{self.name}: combinational cycle detected")
        return order

    def sccs(self) -> List[List[int]]:
        """Strongly connected components of the full graph (all weights).

        Returned in reverse topological order of the condensation reversed,
        i.e. the list is a valid *topological* order of the condensation:
        every edge of the condensation goes from an earlier component to a
        later one.  Uses an iterative Tarjan to survive deep graphs.
        """
        n = len(self._nodes)
        fanout_ids: List[List[int]] = [[] for _ in range(n)]
        for src, dst, _ in self.edges():
            fanout_ids[src].append(dst)
        index = [0] * n
        lowlink = [0] * n
        on_stack = [False] * n
        visited = [False] * n
        stack: List[int] = []
        components: List[List[int]] = []
        counter = [1]

        for root in range(n):
            if visited[root]:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                v, pi = work[-1]
                if pi == 0:
                    visited[v] = True
                    index[v] = lowlink[v] = counter[0]
                    counter[0] += 1
                    stack.append(v)
                    on_stack[v] = True
                advanced = False
                for j in range(pi, len(fanout_ids[v])):
                    w = fanout_ids[v][j]
                    if not visited[w]:
                        work[-1] = (v, j + 1)
                        work.append((w, 0))
                        advanced = True
                        break
                    if on_stack[w]:
                        lowlink[v] = min(lowlink[v], index[w])
                if advanced:
                    continue
                work.pop()
                if lowlink[v] == index[v]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        comp.append(w)
                        if w == v:
                            break
                    components.append(comp)
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[v])
        components.reverse()
        return components

    def check(self) -> None:
        """Validate all structural invariants; raise ``ValueError`` if broken."""
        for nid, node in enumerate(self._nodes):
            if node.kind is NodeKind.PI and node.fanins:
                raise ValueError(f"PI {node.name!r} has fanins")
            if node.kind is NodeKind.PO:
                if len(node.fanins) != 1:
                    raise ValueError(f"PO {node.name!r} must have exactly one fanin")
                if self.fanouts(nid):
                    raise ValueError(f"PO {node.name!r} has fanouts")
            if node.kind is NodeKind.GATE:
                if node.func is None or node.func.n != len(node.fanins):
                    raise ValueError(f"gate {node.name!r} arity mismatch")
            for pin in node.fanins:
                if self._nodes[pin.src].kind is NodeKind.PO:
                    raise ValueError(f"{node.name!r} reads from PO")
        self.comb_topo_order()  # raises on combinational cycles

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "SeqCircuit":
        out = SeqCircuit(name or self.name)
        for node in self._nodes:
            out._add(Node(node.name, node.kind, node.func, list(node.fanins)))
        return out

    def with_weights(
        self, weight_fn: Callable[[int, int, int], int], name: Optional[str] = None
    ) -> "SeqCircuit":
        """Copy with edge weights rewritten by ``weight_fn(src, dst, w)``."""
        out = SeqCircuit(name or self.name)
        for dst, node in enumerate(self._nodes):
            pins = [Pin(p.src, weight_fn(p.src, dst, p.weight)) for p in node.fanins]
            out._add(Node(node.name, node.kind, node.func, pins))
        return out

    def apply_retiming(
        self, r: Sequence[int], name: Optional[str] = None
    ) -> "SeqCircuit":
        """Apply a retiming: ``w_r(e(u,v)) = w(e) + r(v) - r(u)``.

        Raises :class:`ValueError` when any retimed weight would be
        negative (an illegal retiming).
        """
        if len(r) != len(self._nodes):
            raise ValueError("retiming vector length mismatch")

        def retimed(src: int, dst: int, w: int) -> int:
            w_r = w + r[dst] - r[src]
            if w_r < 0:
                raise ValueError(
                    f"illegal retiming: edge {self.name_of(src)!r}->"
                    f"{self.name_of(dst)!r} weight {w} becomes {w_r}"
                )
            return w_r

        return self.with_weights(retimed, name)

    def clock_period(self) -> int:
        """Longest purely combinational path, in unit gate delays.

        This is the clock period of the circuit *as placed* (no retiming):
        the maximum total gate delay along any register-free path.
        """
        order = self.comb_topo_order()
        arrival = [0] * len(self._nodes)
        best = 0
        for v in order:
            node = self._nodes[v]
            worst = 0
            for pin in node.fanins:
                if pin.weight == 0:
                    worst = max(worst, arrival[pin.src])
            arrival[v] = worst + node.delay
            best = max(best, arrival[v])
        return best
