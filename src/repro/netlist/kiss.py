"""KISS2 finite-state-machine format and the FSM model.

The paper's MCNC test set consists of FSM benchmarks distributed as KISS2
state-transition tables; the flow encodes them and synthesizes logic.  This
module provides the :class:`FSM` model and the reader/writer;
:mod:`repro.bench.fsm` builds gate-level circuits from it.

Format (SIS): header lines ``.i N`` ``.o M`` ``.p P`` ``.s S`` ``.r reset``
followed by ``P`` transition lines ``<input> <state> <next> <output>``
where ``<input>`` is an ``N``-character cube over ``{0,1,-}`` and
``<output>`` is an ``M``-character string over ``{0,1,-}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Transition:
    """One row of the state transition table."""

    inputs: str  # cube over {0,1,-}, length = FSM.num_inputs
    state: str
    next_state: str
    outputs: str  # string over {0,1,-}, length = FSM.num_outputs

    def matches(self, input_bits: int, num_inputs: int) -> bool:
        """True when an input assignment (bit i = input i) matches the cube."""
        for i, ch in enumerate(self.inputs):
            bit = (input_bits >> i) & 1
            if ch == "1" and bit != 1:
                return False
            if ch == "0" and bit != 0:
                return False
        return True


@dataclass
class FSM:
    """A Mealy finite state machine (completely or partially specified)."""

    name: str
    num_inputs: int
    num_outputs: int
    transitions: List[Transition] = field(default_factory=list)
    reset_state: Optional[str] = None

    @property
    def states(self) -> List[str]:
        """All state names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for t in self.transitions:
            seen.setdefault(t.state)
            seen.setdefault(t.next_state)
        return list(seen)

    @property
    def num_states(self) -> int:
        return len(self.states)

    def add(self, inputs: str, state: str, next_state: str, outputs: str) -> None:
        if len(inputs) != self.num_inputs or len(outputs) != self.num_outputs:
            raise ValueError("transition width mismatch")
        if any(c not in "01-" for c in inputs + outputs):
            raise ValueError("transition fields must be over {0,1,-}")
        self.transitions.append(Transition(inputs, state, next_state, outputs))

    def step(self, state: str, input_bits: int) -> Tuple[str, str]:
        """Simulate one step; returns ``(next_state, output_string)``.

        The first matching transition wins (SIS convention); a missing
        entry keeps the state and outputs all zeros.
        """
        for t in self.transitions:
            if t.state == state and t.matches(input_bits, self.num_inputs):
                outs = "".join("1" if c == "1" else "0" for c in t.outputs)
                return t.next_state, outs
        return state, "0" * self.num_outputs

    def check(self) -> None:
        """Validate deterministic single-source rows (overlaps allowed)."""
        for t in self.transitions:
            if len(t.inputs) != self.num_inputs:
                raise ValueError("input cube width mismatch")
            if len(t.outputs) != self.num_outputs:
                raise ValueError("output width mismatch")


def read_kiss(text: str) -> FSM:
    """Parse KISS2 text into an :class:`FSM`."""
    name = "fsm"
    num_inputs = num_outputs = None
    reset = None
    rows: List[Tuple[str, str, str, str]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        head = tokens[0]
        if head == ".i":
            num_inputs = int(tokens[1])
        elif head == ".o":
            num_outputs = int(tokens[1])
        elif head == ".p" or head == ".s":
            pass  # informational counts
        elif head == ".r":
            reset = tokens[1]
        elif head == ".model":
            name = tokens[1] if len(tokens) > 1 else name
        elif head in (".end", ".e"):
            break
        elif head.startswith("."):
            continue  # unsupported directive
        else:
            if len(tokens) != 4:
                raise ValueError(f"bad KISS transition line: {line!r}")
            rows.append((tokens[0], tokens[1], tokens[2], tokens[3]))
    if num_inputs is None or num_outputs is None:
        raise ValueError("KISS file missing .i or .o header")
    fsm = FSM(name, num_inputs, num_outputs, reset_state=reset)
    for inputs, state, nxt, outputs in rows:
        fsm.add(inputs, state, nxt, outputs)
    if fsm.reset_state is None and fsm.transitions:
        fsm.reset_state = fsm.transitions[0].state
    fsm.check()
    return fsm


def write_kiss(fsm: FSM) -> str:
    """Serialize an :class:`FSM` to KISS2 text."""
    lines = [
        f".i {fsm.num_inputs}",
        f".o {fsm.num_outputs}",
        f".p {len(fsm.transitions)}",
        f".s {fsm.num_states}",
    ]
    if fsm.reset_state is not None:
        lines.append(f".r {fsm.reset_state}")
    for t in fsm.transitions:
        lines.append(f"{t.inputs} {t.state} {t.next_state} {t.outputs}")
    lines.append(".e")
    return "\n".join(lines) + "\n"


def read_kiss_file(path: str) -> FSM:
    with open(path) as handle:
        return read_kiss(handle.read())


def write_kiss_file(fsm: FSM, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(write_kiss(fsm))
