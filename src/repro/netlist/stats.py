"""Circuit statistics and profiles (reporting substrate).

The benchmark tables report GATE/FF counts; users of a mapper want more:
logic-level distribution, fanin/fanout histograms, register depths, SCC
structure, and — for mapped networks — the LUT fill and NPN function
profile.  This module computes them all from the retiming graph; the CLI
``stats`` command and the examples print them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.netlist.graph import NodeKind, SeqCircuit


@dataclass
class CircuitProfile:
    """Aggregated structural statistics of a sequential circuit."""

    name: str
    pis: int
    pos: int
    gates: int
    ffs: int
    clock_period: int  # combinational depth as placed
    fanin_histogram: Dict[int, int] = field(default_factory=dict)
    fanout_histogram: Dict[int, int] = field(default_factory=dict)
    level_histogram: Dict[int, int] = field(default_factory=dict)
    weight_histogram: Dict[int, int] = field(default_factory=dict)
    scc_sizes: List[int] = field(default_factory=list)

    @property
    def max_fanout(self) -> int:
        return max(self.fanout_histogram, default=0)

    @property
    def loop_gates(self) -> int:
        """Nodes sitting on some cycle.

        ``scc_sizes`` contains only cyclic components (non-trivial SCCs
        plus genuine self-loops), so the sum is the on-cycle node count.
        """
        return sum(self.scc_sizes)


def profile(circuit: SeqCircuit) -> CircuitProfile:
    """Compute the full structural profile."""
    fanin_hist: Counter[int] = Counter()
    fanout_hist: Counter[int] = Counter()
    weight_hist: Counter[int] = Counter()
    for g in circuit.gates:
        fanin_hist[len(circuit.fanins(g))] += 1
    for v in circuit.node_ids():
        if circuit.kind(v) is not NodeKind.PO:
            fanout_hist[len(circuit.fanouts(v))] += 1
    for *_e, w in circuit.edges():
        weight_hist[w] += 1

    # Combinational level per gate (registered inputs restart at 0).
    level: Dict[int, int] = {}
    level_hist: Counter[int] = Counter()
    for v in circuit.comb_topo_order():
        node = circuit.node(v)
        worst = 0
        for pin in node.fanins:
            if pin.weight == 0:
                worst = max(worst, level.get(pin.src, 0))
        level[v] = worst + node.delay
        if node.kind is NodeKind.GATE:
            level_hist[level[v]] += 1

    scc_sizes = sorted(
        (len(comp) for comp in circuit.sccs() if len(comp) > 1), reverse=True
    )
    # Self-loops count as cycles too.
    for comp in circuit.sccs():
        if len(comp) == 1:
            v = comp[0]
            if any(p.src == v for p in circuit.fanins(v)):
                scc_sizes.append(1)
    stats = circuit.stats()
    return CircuitProfile(
        name=circuit.name,
        pis=stats["pis"],
        pos=stats["pos"],
        gates=stats["gates"],
        ffs=stats["ffs"],
        clock_period=circuit.clock_period(),
        fanin_histogram=dict(sorted(fanin_hist.items())),
        fanout_histogram=dict(sorted(fanout_hist.items())),
        level_histogram=dict(sorted(level_hist.items())),
        weight_histogram=dict(sorted(weight_hist.items())),
        scc_sizes=sorted(scc_sizes, reverse=True),
    )


def lut_profile(circuit: SeqCircuit, max_npn_arity: int = 6) -> Dict[str, object]:
    """Mapping-quality metrics for a LUT network.

    Returns input-fill distribution, average fill, and the number of
    distinct NPN function classes used (functions wider than
    ``max_npn_arity`` are counted syntactically).
    """
    from repro.boolfn.npn import npn_canonical

    fills: Counter[int] = Counter()
    classes: Set[Tuple[int, int]] = set()
    for g in circuit.gates:
        func = circuit.func(g)
        if func is None:
            continue
        fills[func.n] += 1
        if func.n <= max_npn_arity:
            classes.add((func.n, npn_canonical(func).bits))
        else:
            classes.add((func.n, func.bits))
    total = sum(fills.values())
    avg = (
        sum(n * count for n, count in fills.items()) / total if total else 0.0
    )
    return {
        "luts": total,
        "fill_histogram": dict(sorted(fills.items())),
        "average_inputs": avg,
        "npn_classes": len(classes),
    }


def render_profile(p: CircuitProfile) -> str:
    """Human-readable multi-line profile summary."""
    lines = [
        f"{p.name}: {p.pis} PI, {p.pos} PO, {p.gates} gates, {p.ffs} FFs, "
        f"depth {p.clock_period}",
        f"fanins : {_fmt_hist(p.fanin_histogram)}",
        f"fanouts: {_fmt_hist(p.fanout_histogram)} (max {p.max_fanout})",
        f"levels : {_fmt_hist(p.level_histogram)}",
        f"weights: {_fmt_hist(p.weight_histogram)}",
    ]
    if p.scc_sizes:
        shown = ", ".join(str(s) for s in p.scc_sizes[:8])
        more = "" if len(p.scc_sizes) <= 8 else f" (+{len(p.scc_sizes) - 8})"
        lines.append(f"loops  : sizes {shown}{more} ({p.loop_gates} gates on cycles)")
    else:
        lines.append("loops  : none (feed-forward)")
    return "\n".join(lines)


def _fmt_hist(hist: Dict[int, int], limit: int = 10) -> str:
    items = list(hist.items())[:limit]
    text = " ".join(f"{k}:{v}" for k, v in items)
    return text + (" ..." if len(hist) > limit else "")
