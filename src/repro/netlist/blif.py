"""BLIF reader and writer for sequential circuits.

Supports the SIS BLIF subset the paper's flow relies on: ``.model``,
``.inputs``, ``.outputs``, ``.names`` (cube covers), ``.latch`` and
``.end``.  Latches are converted to retiming-graph edge weights on read
(every reader of a latch output reads the latch *input* with weight + 1;
latch chains accumulate) and materialized back into ``.latch`` statements
on write.

Latch initial values are accepted on read but not modeled: retiming does
not, in general, preserve initial states (a classical caveat of [16]), and
all verification in this project either compares steady-state behaviour or
reasons per-transformation.  The reader records the declared values in
:attr:`BlifInfo.initial_values` so callers can inspect them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.boolfn.sop import Cover, minimize_cover
from repro.boolfn.truthtable import TruthTable
from repro.netlist.graph import SeqCircuit


@dataclass
class BlifInfo:
    """Side information collected while reading a BLIF file."""

    initial_values: Dict[str, str] = field(default_factory=dict)


class BlifError(ValueError):
    """Raised on malformed BLIF input."""


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
def _logical_lines(text: str) -> Iterable[List[str]]:
    """Yield token lists, honoring ``\\`` continuations and ``#`` comments."""
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        line = pending + line
        pending = ""
        tokens = line.split()
        if tokens:
            yield tokens
    if pending.split():
        yield pending.split()


def read_blif(text: str) -> Tuple[SeqCircuit, BlifInfo]:
    """Parse BLIF text into a retiming graph.

    Returns the circuit and a :class:`BlifInfo` with latch initial values.
    """
    model = "blif"
    inputs: List[str] = []
    outputs: List[str] = []
    covers: Dict[str, Tuple[List[str], List[Tuple[str, str]]]] = {}
    latches: Dict[str, Tuple[str, str]] = {}  # q -> (d, init)
    current: Optional[str] = None

    for tokens in _logical_lines(text):
        head = tokens[0]
        if head == ".model":
            model = tokens[1] if len(tokens) > 1 else model
            current = None
        elif head == ".inputs":
            inputs.extend(tokens[1:])
            current = None
        elif head == ".outputs":
            outputs.extend(tokens[1:])
            current = None
        elif head == ".latch":
            if len(tokens) < 3:
                raise BlifError(".latch needs input and output")
            d, q = tokens[1], tokens[2]
            init = tokens[-1] if len(tokens) > 3 and tokens[-1] in "0123" else "3"
            if q in latches:
                raise BlifError(f"latch output {q!r} driven twice")
            latches[q] = (d, init)
            current = None
        elif head == ".names":
            if len(tokens) < 2:
                raise BlifError(".names needs at least an output")
            *fanin_names, output = tokens[1:]
            if output in covers:
                raise BlifError(f"signal {output!r} driven twice")
            covers[output] = (list(fanin_names), [])
            current = output
        elif head == ".end":
            current = None
        elif head.startswith("."):
            current = None  # unsupported directive: skip (e.g. .clock)
        else:
            if current is None:
                raise BlifError(f"cube line outside .names: {' '.join(tokens)}")
            fanin_names, cubes = covers[current]
            if fanin_names:
                if len(tokens) != 2:
                    raise BlifError(f"bad cube line: {' '.join(tokens)}")
                pattern, out = tokens
            else:
                if len(tokens) != 1:
                    raise BlifError(f"bad constant line: {' '.join(tokens)}")
                pattern, out = "", tokens[0]
            if len(pattern) != len(fanin_names) or out not in "01":
                raise BlifError(f"bad cube line: {' '.join(tokens)}")
            cubes.append((pattern, out))

    circuit = SeqCircuit(model)
    info = BlifInfo()
    for q, (_, init) in latches.items():
        info.initial_values[q] = init

    # Resolve a signal through latch chains to (driving signal, weight).
    def resolve(signal: str) -> Tuple[str, int]:
        weight = 0
        seen = set()
        while signal in latches:
            if signal in seen:
                raise BlifError(f"latch cycle through {signal!r}")
            seen.add(signal)
            signal = latches[signal][0]
            weight += 1
        return signal, weight

    # Two-phase construction: sequential feedback (a gate reading its own
    # output through a latch) is legal, so all gate nodes are created
    # before any fanin is wired.
    ids: Dict[str, int] = {}
    for name in inputs:
        ids[name] = circuit.add_pi(name)
    for signal, (fanin_names, cube_lines) in covers.items():
        if signal in ids:
            raise BlifError(f"signal {signal!r} driven twice")
        func = _cover_to_table(fanin_names, cube_lines, signal)
        ids[signal] = circuit.add_gate_placeholder(signal, func)
    for signal, (fanin_names, _) in covers.items():
        pins: List[Tuple[int, int]] = []
        for fname in fanin_names:
            base, weight = resolve(fname)
            if base not in ids:
                raise BlifError(f"undriven signal {base!r}")
            pins.append((ids[base], weight))
        circuit.set_fanins(ids[signal], pins)
    for name in outputs:
        base, weight = resolve(name)
        if base not in ids:
            raise BlifError(f"undriven signal {base!r}")
        # PO nodes need names distinct from their driving gates; the writer
        # strips the "@po" marker when regenerating ".outputs".
        po_name = name if name not in circuit else f"{name}@po"
        while po_name in circuit:
            po_name += "'"
        circuit.add_po(po_name, ids[base], weight)
    for q, (d, _) in latches.items():
        base, _w = resolve(d)
        if base not in ids:
            raise BlifError(f"undriven latch input {d!r}")

    try:
        circuit.check()
    except ValueError as exc:
        raise BlifError(str(exc)) from exc
    return circuit, info


def _cover_to_table(
    fanin_names: Sequence[str], cube_lines: Sequence[Tuple[str, str]], signal: str
) -> TruthTable:
    n = len(fanin_names)
    on_lines = [p for p, out in cube_lines if out == "1"]
    off_lines = [p for p, out in cube_lines if out == "0"]
    if on_lines and off_lines:
        raise BlifError(f"signal {signal!r} mixes on-set and off-set cubes")
    if off_lines:
        cover = Cover.from_strings(n, off_lines)
        return ~cover.to_truthtable()
    cover = Cover.from_strings(n, on_lines)
    return cover.to_truthtable()


def read_blif_file(path: str) -> Tuple[SeqCircuit, BlifInfo]:
    with open(path) as handle:
        return read_blif(handle.read())


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def write_blif(circuit: SeqCircuit) -> str:
    """Serialize a retiming graph back to BLIF.

    Edge weights become chains of ``.latch`` statements on freshly named
    signals; every signal name from the circuit is preserved.
    """
    def po_signal_name(pid: int) -> str:
        """External name of a PO node (strip the "@po" collision marker)."""
        name = circuit.name_of(pid).rstrip("'")
        return name[: -len("@po")] if name.endswith("@po") else name

    lines: List[str] = [f".model {circuit.name}"]
    pis = [circuit.name_of(i) for i in circuit.pis]
    pos = [po_signal_name(i) for i in circuit.pos]
    lines.append(".inputs " + " ".join(pis) if pis else ".inputs")
    lines.append(".outputs " + " ".join(pos) if pos else ".outputs")

    latch_lines: List[str] = []
    delayed: Dict[Tuple[int, int], str] = {}

    def signal(src: int, weight: int) -> str:
        """Signal name carrying ``src`` delayed by ``weight`` registers."""
        base = circuit.name_of(src)
        if weight == 0:
            return base
        key = (src, weight)
        if key not in delayed:
            prev = signal(src, weight - 1)
            name = f"{base}__d{weight}"
            latch_lines.append(f".latch {prev} {name} re clk 0")
            delayed[key] = name
        return delayed[key]

    names_lines: List[str] = []
    for gid in circuit.gates:
        node = circuit.node(gid)
        func = node.func
        if func is None:
            raise BlifError(f"gate {node.name!r} has no function")
        fan_signals = [signal(p.src, p.weight) for p in node.fanins]
        cover = minimize_cover(func)
        names_lines.append(".names " + " ".join(fan_signals + [node.name]))
        if func.bits == 0:
            pass  # constant zero: empty cover
        elif not cover.cubes:
            pass
        else:
            for cube in cover.cubes:
                text = cube.to_string(func.n)
                names_lines.append((text + " 1") if text else "1")

    po_lines: List[str] = []
    for pid in circuit.pos:
        node = circuit.node(pid)
        pin = node.fanins[0]
        src_signal = signal(pin.src, pin.weight)
        target = po_signal_name(pid)
        if src_signal != target:
            po_lines.append(f".names {src_signal} {target}")
            po_lines.append("1 1")

    lines.extend(latch_lines)
    lines.extend(names_lines)
    lines.extend(po_lines)
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_blif_file(circuit: SeqCircuit, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(write_blif(circuit))
