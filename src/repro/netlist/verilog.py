"""Structural Verilog writer for mapped LUT networks.

Downstream FPGA flows consume netlists, not BLIF alone; this writer emits
a self-contained synthesizable module per circuit:

* each gate becomes an ``assign`` whose expression is the function's
  minimized sum-of-products over the fanin wires (LUT semantics without
  vendor primitives, so the output simulates anywhere);
* registers are materialized as an always-block shift chain per driver
  (matching the retiming-graph fanout-sharing semantics of
  :attr:`repro.netlist.graph.SeqCircuit.n_ffs`), reset to zero by an
  optional synchronous ``rst`` port;
* identifiers are sanitized deterministically and uniquely.

The writer is exercised against the Python simulator in
``tests/netlist/test_verilog.py`` (expression semantics) — no external
tools are assumed.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.boolfn.sop import minimize_cover
from repro.netlist.graph import SeqCircuit

_IDENT = re.compile(r"[^A-Za-z0-9_]")
_KEYWORDS = {
    "module", "endmodule", "input", "output", "wire", "reg", "assign",
    "always", "begin", "end", "if", "else", "case", "endcase", "posedge",
    "negedge", "initial", "not", "and", "or", "xor",
}


class _Namer:
    """Deterministic, collision-free Verilog identifiers."""

    def __init__(self) -> None:
        self._taken: Dict[str, int] = {}
        self._by_node: Dict[int, str] = {}

    def name(self, nid: int, raw: str) -> str:
        if nid in self._by_node:
            return self._by_node[nid]
        base = _IDENT.sub("_", raw) or "n"
        if base[0].isdigit() or base in _KEYWORDS:
            base = "n_" + base
        count = self._taken.get(base, 0)
        self._taken[base] = count + 1
        final = base if count == 0 else f"{base}_{count}"
        self._by_node[nid] = final
        return final


def _expression(circuit: SeqCircuit, gate: int, operand: List[str]) -> str:
    """Sum-of-products expression of the gate over operand wire names."""
    func = circuit.func(gate)
    if func is None:
        raise ValueError(f"gate {circuit.name_of(gate)!r} has no function")
    if func.n == 0:
        return "1'b1" if func.bits & 1 else "1'b0"
    if func.bits == 0:
        return "1'b0"
    if func.is_const():
        return "1'b1"
    cover = minimize_cover(func)
    terms: List[str] = []
    for cube in cover.cubes:
        lits = []
        for i in range(func.n):
            ch = cube.literal(i)
            if ch == "1":
                lits.append(operand[i])
            elif ch == "0":
                lits.append(f"~{operand[i]}")
        terms.append(" & ".join(lits) if lits else "1'b1")
    if len(terms) == 1:
        return terms[0]
    return " | ".join(f"({t})" for t in terms)


def write_verilog(
    circuit: SeqCircuit,
    module_name: Optional[str] = None,
    clock: str = "clk",
    reset: Optional[str] = "rst",
) -> str:
    """Serialize the circuit as one synthesizable Verilog module.

    ``reset=None`` omits the synchronous reset port (registers then have
    no defined power-up value, exactly like the retiming-graph model).
    """
    namer = _Namer()
    module = _IDENT.sub("_", module_name or circuit.name) or "top"

    # Register chains: per driver, depth = max fanout weight.
    depth: Dict[int, int] = {}
    for dst in circuit.node_ids():
        for pin in circuit.fanins(dst):
            depth[pin.src] = max(depth.get(pin.src, 0), pin.weight)

    def wire(nid: int) -> str:
        return namer.name(nid, circuit.name_of(nid))

    def delayed(nid: int, w: int) -> str:
        return wire(nid) if w == 0 else f"{wire(nid)}_d{w}"

    pis = [wire(p) for p in circuit.pis]
    pos: List[Tuple[str, str]] = []  # (port, driving expression)
    for po in circuit.pos:
        raw = circuit.name_of(po)
        raw = raw[: -len("@po")] if raw.rstrip("'").endswith("@po") else raw
        pin = circuit.fanins(po)[0]
        pos.append((namer.name(po, raw), delayed(pin.src, pin.weight)))

    has_regs = any(d > 0 for d in depth.values())
    ports = []
    if has_regs:
        ports.append(clock)
        if reset:
            ports.append(reset)
    ports += pis + [name for name, _src in pos]

    lines = [f"module {module} ("]
    lines.append("    " + ",\n    ".join(ports))
    lines.append(");")
    if has_regs:
        lines.append(f"  input {clock};")
        if reset:
            lines.append(f"  input {reset};")
    for p in pis:
        lines.append(f"  input {p};")
    for name, _src in pos:
        lines.append(f"  output {name};")

    for g in circuit.gates:
        lines.append(f"  wire {wire(g)};")
    for nid, d in sorted(depth.items()):
        for w in range(1, d + 1):
            lines.append(f"  reg {delayed(nid, w)};")

    lines.append("")
    for g in circuit.gates:
        operands = [delayed(p.src, p.weight) for p in circuit.fanins(g)]
        lines.append(f"  assign {wire(g)} = {_expression(circuit, g, operands)};")
    for name, src in pos:
        lines.append(f"  assign {name} = {src};")

    if has_regs:
        lines.append("")
        lines.append(f"  always @(posedge {clock}) begin")
        if reset:
            lines.append(f"    if ({reset}) begin")
            for nid, d in sorted(depth.items()):
                for w in range(1, d + 1):
                    lines.append(f"      {delayed(nid, w)} <= 1'b0;")
            lines.append("    end else begin")
        indent = "      " if reset else "    "
        for nid, d in sorted(depth.items()):
            for w in range(1, d + 1):
                lines.append(
                    f"{indent}{delayed(nid, w)} <= {delayed(nid, w - 1)};"
                )
        if reset:
            lines.append("    end")
        lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_file(
    circuit: SeqCircuit, path: str, **kwargs: object
) -> None:
    with open(path, "w") as handle:
        handle.write(write_verilog(circuit, **kwargs))
