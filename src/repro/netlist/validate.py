"""Structural validation helpers for retiming graphs.

The mapping algorithms assume their input is a *K-bounded* sequential
circuit (paper Section 2): every gate has at most K fanins, every cycle
carries at least one register, and the PI/PO discipline of
:meth:`repro.netlist.graph.SeqCircuit.check` holds.  These helpers give
precise diagnostics and are used as preconditions throughout the core.

Every :class:`ValidationError` message is uniform: it is prefixed with
the circuit name and the offender count, and names up to
:data:`MAX_SHOWN` offending nodes — enough to act on without drowning a
log in a large netlist's full offender list.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.netlist.graph import NodeKind, SeqCircuit


class ValidationError(ValueError):
    """A structural precondition does not hold."""


#: How many offending node names a message spells out.
MAX_SHOWN = 5


def _fail(circuit: SeqCircuit, what: str, names: Sequence[str], hint: str = "") -> None:
    """Raise the uniform ``<circuit>: <count> <what> (e.g. ...)`` error."""
    shown = ", ".join(names[:MAX_SHOWN])
    suffix = f"; {hint}" if hint else ""
    raise ValidationError(
        f"{circuit.name}: {len(names)} {what} (e.g. {shown}){suffix}"
    )


def io_discipline_offenders(circuit: SeqCircuit) -> "dict[str, List[int]]":
    """PI/PO discipline violations, keyed by violation kind.

    Keys: ``"pi_with_fanins"``, ``"po_bad_fanin_count"``,
    ``"po_with_fanouts"``, ``"reads_po"``.
    """
    out: "dict[str, List[int]]" = {
        "pi_with_fanins": [],
        "po_bad_fanin_count": [],
        "po_with_fanouts": [],
        "reads_po": [],
    }
    for nid in circuit.node_ids():
        kind = circuit.kind(nid)
        pins = circuit.fanins(nid)
        if kind is NodeKind.PI and pins:
            out["pi_with_fanins"].append(nid)
        if kind is NodeKind.PO:
            if len(pins) != 1:
                out["po_bad_fanin_count"].append(nid)
            if circuit.fanouts(nid):
                out["po_with_fanouts"].append(nid)
        if any(circuit.kind(p.src) is NodeKind.PO for p in pins):
            out["reads_po"].append(nid)
    return out


def arity_offenders(circuit: SeqCircuit) -> List[int]:
    """Gates whose function arity disagrees with their fanin count."""
    out: List[int] = []
    for g in circuit.gates:
        func = circuit.func(g)
        if func is None or func.n != len(circuit.fanins(g)):
            out.append(g)
    return out


def zero_weight_cycles(circuit: SeqCircuit) -> List[List[int]]:
    """Cycles of the zero-weight (combinational) subgraph.

    Returns the cyclic strongly connected components — size > 1, or a
    single node with a zero-weight self-loop — of the subgraph formed by
    register-free edges.  A non-empty result means the circuit has a
    combinational loop, which no retiming can legalize.
    """
    n = len(circuit)
    fanout_ids: List[List[int]] = [[] for _ in range(n)]
    for src, dst, weight in circuit.edges():
        if weight == 0:
            fanout_ids[src].append(dst)
    index = [0] * n
    lowlink = [0] * n
    on_stack = [False] * n
    visited = [False] * n
    stack: List[int] = []
    cyclic: List[List[int]] = []
    counter = 1
    for root in range(n):
        if visited[root]:
            continue
        work: List["tuple[int, int]"] = [(root, 0)]
        while work:
            v, pi = work[-1]
            if pi == 0:
                visited[v] = True
                index[v] = lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            for j in range(pi, len(fanout_ids[v])):
                w = fanout_ids[v][j]
                if not visited[w]:
                    work[-1] = (v, j + 1)
                    work.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work.pop()
            if lowlink[v] == index[v]:
                comp: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp.append(w)
                    if w == v:
                        break
                comp.reverse()
                if len(comp) > 1 or v in fanout_ids[v]:
                    cyclic.append(comp)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return cyclic


def ensure_valid(circuit: SeqCircuit) -> None:
    """Run all structural checks; raise :class:`ValidationError` on failure."""
    io = io_discipline_offenders(circuit)
    if io["pi_with_fanins"]:
        _fail(
            circuit,
            "PI(s) with fanins",
            [circuit.name_of(v) for v in io["pi_with_fanins"]],
        )
    if io["po_bad_fanin_count"]:
        _fail(
            circuit,
            "PO(s) without exactly one fanin",
            [circuit.name_of(v) for v in io["po_bad_fanin_count"]],
        )
    if io["po_with_fanouts"]:
        _fail(
            circuit,
            "PO(s) with fanouts",
            [circuit.name_of(v) for v in io["po_with_fanouts"]],
        )
    if io["reads_po"]:
        _fail(
            circuit,
            "node(s) reading from a PO",
            [circuit.name_of(v) for v in io["reads_po"]],
        )
    bad_arity = arity_offenders(circuit)
    if bad_arity:
        _fail(
            circuit,
            "gate(s) whose function arity != fanin count",
            [circuit.name_of(v) for v in bad_arity],
            hint="wire every placeholder before mapping",
        )
    cycles = zero_weight_cycles(circuit)
    if cycles:
        _fail(
            circuit,
            "combinational cycle(s) with zero register weight",
            [" -> ".join(circuit.name_of(v) for v in c[:MAX_SHOWN]) for c in cycles],
            hint="every cycle must carry at least one register",
        )


def ensure_k_bounded(circuit: SeqCircuit, k: int) -> None:
    """Require every gate to have at most ``k`` fanins."""
    offenders = [
        circuit.name_of(g)
        for g in circuit.gates
        if len(circuit.fanins(g)) > k
    ]
    if offenders:
        _fail(
            circuit,
            f"gate(s) exceed {k} fanins",
            offenders,
            hint="run gate decomposition first",
        )


def ensure_mappable(circuit: SeqCircuit, k: int) -> None:
    """Full precondition of the mapping core: valid and K-bounded."""
    ensure_valid(circuit)
    ensure_k_bounded(circuit, k)


def unobservable_nodes(circuit: SeqCircuit) -> List[int]:
    """Gates and PIs from which no PO is reachable (dead logic)."""
    n = len(circuit)
    useful = [False] * n
    stack = list(circuit.pos)
    for nid in stack:
        useful[nid] = True
    while stack:
        v = stack.pop()
        for pin in circuit.fanins(v):
            if not useful[pin.src]:
                useful[pin.src] = True
                stack.append(pin.src)
    return [
        i
        for i in circuit.node_ids()
        if not useful[i] and circuit.kind(i) is not NodeKind.PO
    ]


def unreachable_nodes(circuit: SeqCircuit) -> List[int]:
    """Nodes that no primary input (or constant generator) reaches.

    Sources are the PIs plus fanin-free gates (constant generators); a
    node outside their forward closure can only be part of an undriven
    island — e.g. a feedback loop no input ever influences.
    """
    n = len(circuit)
    reached = [False] * n
    stack = [
        v
        for v in circuit.node_ids()
        if circuit.kind(v) is NodeKind.PI
        or (circuit.kind(v) is NodeKind.GATE and not circuit.fanins(v))
    ]
    for v in stack:
        reached[v] = True
    while stack:
        v = stack.pop()
        for dst, _w in circuit.fanouts(v):
            if not reached[dst]:
                reached[dst] = True
                stack.append(dst)
    return [i for i in circuit.node_ids() if not reached[i]]


def dangling_nodes(circuit: SeqCircuit) -> List[int]:
    """Dead or undriven nodes: unobservable *or* unreachable.

    The union of :func:`unobservable_nodes` (no PO reachable — the
    classical dead-logic sweep) and :func:`unreachable_nodes` (no PI
    reaches the node), sorted by node id.
    """
    return sorted(set(unobservable_nodes(circuit)) | set(unreachable_nodes(circuit)))
