"""Structural validation helpers for retiming graphs.

The mapping algorithms assume their input is a *K-bounded* sequential
circuit (paper Section 2): every gate has at most K fanins, every cycle
carries at least one register, and the PI/PO discipline of
:meth:`repro.netlist.graph.SeqCircuit.check` holds.  These helpers give
precise diagnostics and are used as preconditions throughout the core.
"""

from __future__ import annotations

from typing import List

from repro.netlist.graph import NodeKind, SeqCircuit


class ValidationError(ValueError):
    """A structural precondition does not hold."""


def ensure_valid(circuit: SeqCircuit) -> None:
    """Run all structural checks; raise :class:`ValidationError` on failure."""
    try:
        circuit.check()
    except ValueError as exc:
        raise ValidationError(str(exc)) from exc


def ensure_k_bounded(circuit: SeqCircuit, k: int) -> None:
    """Require every gate to have at most ``k`` fanins."""
    offenders = [
        circuit.name_of(g)
        for g in circuit.gates
        if len(circuit.fanins(g)) > k
    ]
    if offenders:
        shown = ", ".join(offenders[:5])
        raise ValidationError(
            f"{circuit.name}: {len(offenders)} gate(s) exceed {k} fanins "
            f"(e.g. {shown}); run gate decomposition first"
        )


def ensure_mappable(circuit: SeqCircuit, k: int) -> None:
    """Full precondition of the mapping core: valid and K-bounded."""
    ensure_valid(circuit)
    ensure_k_bounded(circuit, k)


def dangling_nodes(circuit: SeqCircuit) -> List[int]:
    """Gates and PIs from which no PO is reachable (dead logic)."""
    n = len(circuit)
    useful = [False] * n
    stack = list(circuit.pos)
    for nid in stack:
        useful[nid] = True
    while stack:
        v = stack.pop()
        for pin in circuit.fanins(v):
            if not useful[pin.src]:
                useful[pin.src] = True
                stack.append(pin.src)
    return [
        i
        for i in circuit.node_ids()
        if not useful[i] and circuit.kind(i) is not NodeKind.PO
    ]
