"""FSM state minimization (the SIS front-end step).

The paper's benchmark preparation runs "SIS sequential synthesis
commands" before mapping; state minimization is the classical first one.
For the deterministic, completely specified machines this project's STG
generator emits (totalized by the first-match/default rule of
:meth:`repro.netlist.kiss.FSM.step`), the textbook partition-refinement
algorithm is exact:

1. start with states partitioned by their output rows over all input
   minterms,
2. split blocks whose members disagree on the successor *block* for some
   input minterm,
3. repeat to fixpoint; each block becomes one state of the quotient
   machine.

Exponential in the input count (minterm enumeration), which the
generator caps at 8 inputs anyway.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.netlist.kiss import FSM


def equivalent_state_classes(fsm: FSM) -> List[List[str]]:
    """Partition of the states into behavioural equivalence classes."""
    if fsm.num_inputs > 12:
        raise ValueError("state minimization enumerates input minterms; cap 12")
    states = fsm.states
    minterms = range(1 << fsm.num_inputs)
    # Memoize the totalized transition function.
    step: Dict[Tuple[str, int], Tuple[str, str]] = {}
    for s in states:
        for m in minterms:
            step[(s, m)] = fsm.step(s, m)

    block_of: Dict[str, int] = {}
    signature: Dict[str, Tuple[str, ...]] = {
        s: tuple(step[(s, m)][1] for m in minterms) for s in states
    }
    blocks: Dict[Tuple[str, ...], List[str]] = {}
    for s in states:
        blocks.setdefault(signature[s], []).append(s)
    for idx, members in enumerate(blocks.values()):
        for s in members:
            block_of[s] = idx

    while True:
        new_blocks: Dict[Tuple[int, Tuple[int, ...]], List[str]] = {}
        for s in states:
            key = (
                block_of[s],
                tuple(block_of[step[(s, m)][0]] for m in minterms),
            )
            new_blocks.setdefault(key, []).append(s)
        if len(new_blocks) == len(set(block_of.values())):
            return list(new_blocks.values())
        for idx, members in enumerate(new_blocks.values()):
            for s in members:
                block_of[s] = idx


def minimize_states(fsm: FSM) -> FSM:
    """The quotient machine: one representative state per class.

    Transition rows of the representatives are kept verbatim with their
    next states redirected to representatives, so the result remains a
    deterministic first-match table; the reset state maps to its class
    representative.
    """
    classes = equivalent_state_classes(fsm)
    representative: Dict[str, str] = {}
    for members in classes:
        rep = members[0]
        for s in members:
            representative[s] = rep
    reduced = FSM(
        f"{fsm.name}_min",
        fsm.num_inputs,
        fsm.num_outputs,
        reset_state=representative[fsm.reset_state or fsm.states[0]],
    )
    kept = {members[0] for members in classes}
    for t in fsm.transitions:
        if t.state in kept:
            reduced.add(
                t.inputs, t.state, representative[t.next_state], t.outputs
            )
    return reduced


def machines_equivalent(a: FSM, b: FSM, steps: int = 256, seed: int = 0) -> bool:
    """Random-walk behavioural comparison of two machines from reset."""
    if a.num_inputs != b.num_inputs or a.num_outputs != b.num_outputs:
        return False
    from repro.compat import default_rng

    rng = default_rng(seed)
    sa = a.reset_state or a.states[0]
    sb = b.reset_state or b.states[0]
    for _ in range(steps):
        m = int(rng.integers(0, 1 << a.num_inputs))
        sa, outs_a = a.step(sa, m)
        sb, outs_b = b.step(sb, m)
        if outs_a != outs_b:
            return False
    return True
