"""Graphviz DOT export for retiming graphs.

Renders the circuit the way the paper draws its figures: gates as boxes,
PIs/POs as ovals, and registers as edge labels (``w`` slashes on the
connection).  Optional per-node annotations (labels from the solver,
retiming lags, ...) go into the node captions, which makes the export a
handy debugging companion for the label computation.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.netlist.graph import NodeKind, SeqCircuit

_SHAPES = {
    NodeKind.PI: "ellipse",
    NodeKind.PO: "doubleoctagon",
    NodeKind.GATE: "box",
}


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def to_dot(
    circuit: SeqCircuit,
    annotate: Optional[Callable[[int], str]] = None,
    highlight: Optional[Iterable[int]] = None,
    rankdir: str = "LR",
) -> str:
    """Serialize the circuit as a Graphviz digraph.

    ``annotate(node_id)`` may return extra caption text (e.g. a label
    value); ``highlight`` draws the given nodes filled (e.g. a critical
    cycle from :func:`repro.retime.mdr.critical_ratio_cycle`).
    """
    marked = set(highlight or ())
    lines = [
        f"digraph {_quote(circuit.name)} {{",
        f"  rankdir={rankdir};",
        "  node [fontsize=10];",
    ]
    for v in circuit.node_ids():
        node = circuit.node(v)
        caption = node.name
        if annotate is not None:
            extra = annotate(v)
            if extra:
                caption += f"\\n{extra}"
        attrs = [f"shape={_SHAPES[node.kind]}", f"label={_quote(caption)}"]
        if v in marked:
            attrs.append("style=filled")
            attrs.append("fillcolor=lightsalmon")
        lines.append(f"  n{v} [{', '.join(attrs)}];")
    for src, dst, weight in circuit.edges():
        attrs = []
        if weight:
            attrs.append(f"label={_quote(str(weight))}")
            attrs.append("style=bold")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  n{src} -> n{dst}{suffix};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot_file(
    circuit: SeqCircuit,
    path: str,
    annotate: Optional[Callable[[int], str]] = None,
    highlight: Optional[Iterable[int]] = None,
) -> None:
    with open(path, "w") as handle:
        handle.write(to_dot(circuit, annotate=annotate, highlight=highlight))
