"""Leiserson-Saxe retiming for unit-delay (LUT) networks.

Retiming moves registers across gates without changing behaviour [16]: a
retiming is an integer lag ``r(v)`` per node, the retimed weight of edge
``e(u, v)`` is ``w(e) + r(v) - r(u)``, and the retiming is *legal* when
every retimed weight is non-negative.  The clock period of the retimed
circuit is the longest chain of gates between registers.

This module implements the FEAS feasibility algorithm: starting from
``r = 0``, repeatedly compute combinational arrival times on the retimed
graph and increment ``r(v)`` for every node whose arrival exceeds the
target period ``phi``; if violations persist past the iteration bound the
period is infeasible.  Two modes:

* **pipelined** (the paper's setting): POs may take positive lags, which
  inserts registers on I/O paths; FEAS increments-only is complete here
  (any legal solution can be shifted to non-negative gate/PO lags).
  Combined with the ordinary moves this is exactly "pipelining +
  retiming", and every period at or above the circuit's ceiled MDR ratio
  is feasible.
* **strict** (classical Leiserson-Saxe): PIs and POs keep lag 0 —
  registers only move, I/O latency is untouched.  Increments-only FEAS is
  *incomplete* in this mode (registers may have to move backward, needing
  negative lags), so strict mode solves the exact OPT1 difference
  constraints over the ``W``/``D`` path matrices with Bellman-Ford.
  The all-pairs matrices are quadratic; strict mode guards its input size
  and is meant for the classical demos, not for the mapping flow.

:func:`min_period_retiming` binary-searches the smallest feasible period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netlist.graph import SeqCircuit
from repro.retime.mdr import min_feasible_period


@dataclass
class RetimingResult:
    """A legal retiming achieving ``period``."""

    circuit: SeqCircuit  # the retimed circuit
    r: List[int]  # lag per node id of the *input* circuit
    period: int
    #: extra latency (in cycles) each PO gained relative to the PIs;
    #: zero everywhere in strict mode.
    po_lags: Dict[str, int]


class RetimingInfeasible(ValueError):
    """No legal retiming meets the requested period."""


class _FeasGraph:
    """Internal node/edge arrays for the FEAS iteration."""

    def __init__(self, circuit: SeqCircuit) -> None:
        self.delay = [circuit.node(v).delay for v in circuit.node_ids()]
        self.edges: List[Tuple[int, int, int]] = list(circuit.edges())
        self.n = len(self.delay)

    def arrivals(self, r: List[int]) -> Optional[List[int]]:
        """Arrival times on the retimed graph, or ``None`` if it has a
        zero-weight cycle (the candidate lags are unusable)."""
        indeg = [0] * self.n
        fanouts: List[List[int]] = [[] for _ in range(self.n)]
        for src, dst, w in self.edges:
            if w + r[dst] - r[src] <= 0:
                indeg[dst] += 1
                fanouts[src].append(dst)
        order = [v for v in range(self.n) if indeg[v] == 0]
        head = 0
        arrival = [0] * self.n
        while head < len(order):
            u = order[head]
            head += 1
            for v in fanouts[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    order.append(v)
        if len(order) != self.n:
            return None
        for v in order:
            arrival[v] = self.delay[v]
        for u in order:
            for v in fanouts[u]:
                arrival[v] = max(arrival[v], arrival[u] + self.delay[v])
        return arrival


def feas(
    circuit: SeqCircuit,
    phi: int,
    allow_pipelining: bool = True,
    max_rounds: Optional[int] = None,
) -> Optional[List[int]]:
    """Lags of a legal retiming with period ``<= phi``, or ``None``.

    Pipelined mode runs the FEAS increment iteration; strict mode solves
    the exact OPT1 constraint system (see module docstring).
    """
    if phi < 1:
        return None
    if not allow_pipelining:
        return _strict_retime(circuit, phi)
    graph = _FeasGraph(circuit)
    n = graph.n
    r = [0] * n
    rounds = max_rounds if max_rounds is not None else 4 * n + 16
    for _ in range(rounds):
        arrival = graph.arrivals(r)
        if arrival is None:
            return None  # pragma: no cover - increments keep legality
        changed = False
        for v in range(n):
            # PIs never violate: they have no fanins and zero delay.
            if arrival[v] > phi:
                r[v] += 1
                changed = True
        # POs must lag at least as much as their driver demands so their
        # input edge stays non-negative.
        for po in circuit.pos:
            pin = circuit.fanins(po)[0]
            need = r[pin.src] - pin.weight
            if r[po] < need:
                r[po] = need
                changed = True
        if not changed:
            break
    else:
        return None
    arrival = graph.arrivals(r)
    if arrival is None or any(a > phi for a in arrival):
        return None
    for src, dst, w in circuit.edges():
        if w + r[dst] - r[src] < 0:
            return None  # pragma: no cover - increments preserve legality
    return r


#: Strict retiming builds all-pairs W/D matrices; refuse above this size.
STRICT_NODE_LIMIT = 1200


def _strict_retime(circuit: SeqCircuit, phi: int) -> Optional[List[int]]:
    """Exact OPT1: difference constraints over the W/D matrices.

    Constraints (Leiserson-Saxe):

    * ``r(u) - r(v) <= w(e)`` for every edge ``e(u, v)`` (legality);
    * ``r(u) - r(v) <= W(u, v) - 1`` for every pair with ``D(u, v) > phi``;
    * ``r = 0`` on PIs and POs (no I/O latency change).

    Solved by Bellman-Ford shortest paths; ``None`` on a negative cycle.
    """
    n = len(circuit)
    if n > STRICT_NODE_LIMIT:
        raise ValueError(
            f"strict retiming is quadratic and limited to {STRICT_NODE_LIMIT} "
            f"nodes ({n} given); use pipelined mode for mapped circuits"
        )
    big_w, big_d = _wd_matrices(circuit)
    constraints: List[Tuple[int, int, int]] = []  # r[a] - r[b] <= c
    for src, dst, w in circuit.edges():
        constraints.append((src, dst, w))
    for u in range(n):
        row_w, row_d = big_w[u], big_d[u]
        for v in range(n):
            if u != v and row_d[v] > phi and row_w[v] < (1 << 29):
                constraints.append((u, v, row_w[v] - 1))
    # Anchor PIs and POs to lag zero via a reference pseudo-node.
    ref = n
    anchored = list(circuit.pis) + list(circuit.pos)
    for x in anchored:
        constraints.append((x, ref, 0))
        constraints.append((ref, x, 0))
    # Bellman-Ford on the constraint graph: edge b -> a with cost c for
    # each constraint r[a] - r[b] <= c; potentials are a feasible r.
    dist = [0] * (n + 1)
    for _ in range(n + 1):
        changed = False
        for a, b, c in constraints:
            if dist[b] + c < dist[a]:
                dist[a] = dist[b] + c
                changed = True
        if not changed:
            break
    else:
        return None
    shift = dist[ref]
    r = [dist[v] - shift for v in range(n)]
    arrival = _FeasGraph(circuit).arrivals(r)
    if arrival is None or any(a > phi for a in arrival):
        return None  # pragma: no cover - OPT1 constraints are exact
    return r


def _wd_matrices(circuit: SeqCircuit) -> Tuple[List[List[int]], List[List[int]]]:
    """All-pairs ``W`` (min path registers) and ``D`` (max delay at ``W``).

    ``W[u][v]`` is the minimum edge-weight sum over ``u -> v`` paths and
    ``D[u][v]`` the maximum vertex-delay sum among those minimum-weight
    paths (delays include both endpoints).  Unreachable pairs hold
    ``W = INF`` and ``D = -INF``-ish sentinels.
    """
    n = len(circuit)
    inf = 1 << 30
    fanouts: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for src, dst, w in circuit.edges():
        fanouts[src].append((dst, w))
    big_w = [[inf] * n for _ in range(n)]
    big_d = [[-inf] * n for _ in range(n)]
    for s in range(n):
        w_row, d_row = big_w[s], big_d[s]
        w_row[s] = 0
        d_row[s] = circuit.node(s).delay
        # Label-correcting relaxation with lexicographic (W, -D) cost.
        queue = [s]
        in_queue = [False] * n
        in_queue[s] = True
        while queue:
            u = queue.pop()
            in_queue[u] = False
            wu, du = w_row[u], d_row[u]
            for v, w in fanouts[u]:
                nw = wu + w
                nd = du + circuit.node(v).delay
                if nw < w_row[v] or (nw == w_row[v] and nd > d_row[v]):
                    w_row[v] = nw
                    d_row[v] = nd
                    if not in_queue[v]:
                        in_queue[v] = True
                        queue.append(v)
    return big_w, big_d


def retime_for_period(
    circuit: SeqCircuit, phi: int, allow_pipelining: bool = True
) -> RetimingResult:
    """Retime (and pipeline, if allowed) to clock period ``phi``.

    Raises :class:`RetimingInfeasible` when ``phi`` is unattainable.
    """
    r = feas(circuit, phi, allow_pipelining)
    if r is None:
        raise RetimingInfeasible(
            f"{circuit.name}: no legal retiming with period {phi}"
        )
    retimed = circuit.apply_retiming(r, name=f"{circuit.name}_r{phi}")
    period = retimed.clock_period()
    base = min((r[pi] for pi in circuit.pis), default=0)
    po_lags = {circuit.name_of(po): r[po] - base for po in circuit.pos}
    return RetimingResult(circuit=retimed, r=r, period=period, po_lags=po_lags)


def min_period_retiming(
    circuit: SeqCircuit, allow_pipelining: bool = True
) -> RetimingResult:
    """The smallest-period retiming (pipelined by default).

    With pipelining the optimum equals the ceiled MDR bound and a single
    FEAS run suffices; in strict mode the optimum is binary-searched
    between that lower bound and the current clock period.
    """
    lower = min_feasible_period(circuit)
    if allow_pipelining:
        return retime_for_period(circuit, lower, allow_pipelining=True)
    lo, hi = lower, max(lower, circuit.clock_period())
    best: Optional[RetimingResult] = None
    while lo <= hi:
        mid = (lo + hi) // 2
        try:
            best_mid = retime_for_period(circuit, mid, allow_pipelining=False)
        except RetimingInfeasible:
            lo = mid + 1
            continue
        best = best_mid
        hi = mid - 1
    if best is None:
        raise RetimingInfeasible(
            f"{circuit.name}: no strict retiming found up to period "
            f"{max(lower, circuit.clock_period())}"
        )
    return best
