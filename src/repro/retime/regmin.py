"""Register minimization among equal-period retimings.

The paper delegates flip-flop minimization to retiming [16]: among all
legal retimings meeting the clock period, Leiserson-Saxe's secondary
objective picks one minimizing the register count (with fanout sharing:
a driver whose fanout edges carry ``w1..wm`` registers costs
``max(wi)``).  The exact optimum is a min-cost-flow problem; this module
implements the classical *incremental* relaxation instead: starting from
any feasible lag vector, repeatedly shift single-node lags by ±1 when
that preserves legality and the period and lowers the shared register
cost, until a local fixpoint.  On the circuits of this project the local
optimum recovers most of the exact gain at a fraction of the machinery;
the cost function and the invariants are exact, only optimality is
heuristic (documented, tested as monotone non-increasing).
"""

from __future__ import annotations

from typing import List, Optional

from repro.netlist.graph import NodeKind, SeqCircuit
from repro.retime.leiserson import RetimingResult, feas


def shared_register_cost(circuit: SeqCircuit, r: List[int]) -> int:
    """Register count of the retimed circuit, with fanout sharing."""
    total = 0
    for v in circuit.node_ids():
        best = 0
        for dst, w in circuit.fanouts(v):
            best = max(best, w + r[dst] - r[v])
        total += best
    return total


def _move_ok(
    circuit: SeqCircuit,
    r: List[int],
    v: int,
    delta: int,
    phi: int,
) -> bool:
    """Would shifting ``r[v]`` by ``delta`` stay legal and meet ``phi``?

    Legality is local (edge weights at ``v``); the period check is global
    but cheap: recompute arrival times once.
    """
    r[v] += delta
    try:
        for pin in circuit.fanins(v):
            if pin.weight + r[v] - r[pin.src] < 0:
                return False
        for dst, w in circuit.fanouts(v):
            if w + r[dst] - r[v] < 0:
                return False
        retimed = circuit.apply_retiming(r)
        return retimed.clock_period() <= phi
    except ValueError:
        return False
    finally:
        r[v] -= delta


def minimize_registers(
    circuit: SeqCircuit,
    phi: int,
    r: Optional[List[int]] = None,
    max_passes: int = 8,
) -> RetimingResult:
    """A register-lean legal retiming with clock period ``<= phi``.

    Starts from ``r`` (or a pipelined FEAS solution) and hill-climbs
    single-node lag moves.  Gates only; PIs stay anchored and POs move
    only through the legality-preserving moves, so pipeline latencies can
    shrink but never break.
    """
    if r is None:
        r = feas(circuit, phi, allow_pipelining=True)
        if r is None:
            raise ValueError(f"{circuit.name}: period {phi} infeasible")
    r = list(r)
    movable = [
        v
        for v in circuit.node_ids()
        if circuit.kind(v) is not NodeKind.PI
    ]
    cost = shared_register_cost(circuit, r)
    for _ in range(max_passes):
        improved = False
        for v in movable:
            for delta in (-1, 1):
                if not _move_ok(circuit, r, v, delta, phi):
                    continue
                r[v] += delta
                new_cost = shared_register_cost(circuit, r)
                if new_cost < cost:
                    cost = new_cost
                    improved = True
                else:
                    r[v] -= delta
        if not improved:
            break
    retimed = circuit.apply_retiming(r, name=f"{circuit.name}_regmin{phi}")
    base = min((r[pi] for pi in circuit.pis), default=0)
    po_lags = {circuit.name_of(po): r[po] - base for po in circuit.pos}
    return RetimingResult(
        circuit=retimed,
        r=r,
        period=retimed.clock_period(),
        po_lags=po_lags,
    )


#: The exact LP builds the all-pairs W/D matrices; refuse above this size.
EXACT_NODE_LIMIT = 1200


def minimize_registers_exact(
    circuit: SeqCircuit,
    phi: int,
    pipelined: bool = True,
) -> RetimingResult:
    """Exact minimum *total-edge-weight* retiming at period ``phi``.

    This is Leiserson-Saxe's state-minimization objective (their OPT LP):
    ``sum_e w_r(e) = const + sum_v r(v) * (indeg(v) - outdeg(v))`` is
    linear in the lags, and the constraint matrix (legality difference
    constraints plus the period constraints over the W/D matrices) is
    totally unimodular — so the LP relaxation solved by
    ``scipy.optimize.linprog`` has an integral optimum.  Note the
    objective counts every edge's registers separately; the
    fanout-*sharing* cost (:func:`shared_register_cost`) needs the
    Leiserson-Saxe fanout gadget, for which :func:`minimize_registers`
    provides the hill-climbing heuristic.

    ``pipelined=False`` anchors PIs and POs (strict retiming); otherwise
    I/O lags are free and the solution is normalized afterwards.
    Quadratic preprocessing — guarded to :data:`EXACT_NODE_LIMIT` nodes.
    """
    try:
        import numpy as np
        from scipy.optimize import linprog
    except ImportError as exc:  # pragma: no cover - no-numpy environments
        from repro.compat import MissingDependency

        raise MissingDependency(
            "exact register minimization needs numpy + scipy "
            "(pip install 'repro[vector]' scipy)"
        ) from exc

    from repro.retime.leiserson import _wd_matrices
    from repro.retime.mdr import min_feasible_period

    n = len(circuit)
    if n > EXACT_NODE_LIMIT:
        raise ValueError(
            f"exact register minimization is quadratic and limited to "
            f"{EXACT_NODE_LIMIT} nodes ({n} given)"
        )
    if pipelined and phi < min_feasible_period(circuit):
        raise ValueError(f"period {phi} is below the MDR bound")

    # Objective: sum_v r(v) * (indeg - outdeg).
    coef = np.zeros(n)
    for src, dst, _w in circuit.edges():
        coef[dst] += 1.0
        coef[src] -= 1.0

    rows = []
    rhs = []

    def leq(u: int, v: int, bound: int) -> None:
        """Constraint r(u) - r(v) <= bound."""
        row = np.zeros(n)
        row[u] += 1.0
        row[v] -= 1.0
        rows.append(row)
        rhs.append(float(bound))

    for src, dst, w in circuit.edges():
        leq(src, dst, w)
    big_w, big_d = _wd_matrices(circuit)
    inf = 1 << 29
    for u in range(n):
        row_w, row_d = big_w[u], big_d[u]
        for v in range(n):
            if u != v and row_d[v] > phi and row_w[v] < inf:
                leq(u, v, row_w[v] - 1)
    # Anchor: one reference node (objective is shift-invariant); strict
    # mode pins every PI and PO to the reference.
    eq_rows = []
    eq_rhs = []
    anchor = np.zeros(n)
    anchor[0] = 1.0
    eq_rows.append(anchor)
    eq_rhs.append(0.0)
    if not pipelined:
        anchored = list(circuit.pis) + list(circuit.pos)
        for x in anchored:
            for y in anchored:
                if x < y:
                    leq(x, y, 0)
                    leq(y, x, 0)
        if anchored:
            row = np.zeros(n)
            row[anchored[0]] = 1.0
            eq_rows.append(row)
            eq_rhs.append(0.0)

    result = linprog(
        coef,
        A_ub=np.vstack(rows),
        b_ub=np.asarray(rhs),
        A_eq=np.vstack(eq_rows),
        b_eq=np.asarray(eq_rhs),
        bounds=[(None, None)] * n,
        method="highs",
    )
    if not result.success:
        raise ValueError(
            f"{circuit.name}: no legal retiming with period {phi} "
            f"({result.message})"
        )
    r = [int(round(x)) for x in result.x]
    retimed = circuit.apply_retiming(r, name=f"{circuit.name}_regopt{phi}")
    if retimed.clock_period() > phi:  # pragma: no cover - LP is exact
        raise AssertionError("exact retiming violated the period")
    base = min((r[pi] for pi in circuit.pis), default=0)
    po_lags = {circuit.name_of(po): r[po] - base for po in circuit.pos}
    return RetimingResult(
        circuit=retimed,
        r=r,
        period=retimed.clock_period(),
        po_lags=po_lags,
    )
