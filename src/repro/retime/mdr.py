"""Maximum delay-to-register (MDR) ratio of a sequential circuit.

The paper's Problem 1 minimizes the MDR ratio: the maximum, over all
directed cycles ``C`` of the retiming graph, of ``d(C) / w(C)`` — total
gate delay over total register count.  By the retiming/pipelining theory
of Leiserson-Saxe [16] and Papaefthymiou [22], the clock period of a
circuit under retiming *and* pipelining is limited only by this quantity;
with unit gate delays the minimum achievable integer clock period is the
smallest ``phi`` such that no cycle satisfies ``d(C) > phi * w(C)``.

Core primitive: :func:`has_positive_cycle` — does any cycle have
``q * d(C) - p * w(C) > 0``?  (i.e. is the MDR ratio ``> p/q``?)  It runs
a vectorized Bellmann-Ford longest-path relaxation; a cycle of positive
gain exists iff values keep relaxing after ``|V|`` rounds.
:func:`min_feasible_period` binary-searches integer ``phi`` and
:func:`mdr_ratio` recovers the exact rational via denominator-bounded
approximation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from repro.compat import HAVE_NUMPY, np
from repro.netlist.graph import SeqCircuit


def _edge_lists(circuit: SeqCircuit) -> Tuple[List[int], List[int], List[int], List[int]]:
    """(src, dst, weight, delay-of-dst) lists over all edges."""
    src: List[int] = []
    dst: List[int] = []
    weight: List[int] = []
    delay: List[int] = []
    for s, d, w in circuit.edges():
        src.append(s)
        dst.append(d)
        weight.append(w)
        delay.append(circuit.node(d).delay)
    return src, dst, weight, delay


def has_positive_cycle(circuit: SeqCircuit, ratio: Fraction) -> bool:
    """True iff some cycle has ``d(C) / w(C) > ratio``.

    Works on exact integers: with ``ratio = p/q`` the test is whether a
    cycle of positive total gain exists for edge gains
    ``q * d(v) - p * w(e)`` (delay attributed to the edge's head).

    Uses the vectorized numpy Bellman-Ford when the ``[vector]`` extra is
    installed and falls back to a pure edge-relaxation loop otherwise;
    the boolean is exact either way (both are longest-path relaxations
    from an implicit all-zero super-source).
    """
    p, q = ratio.numerator, ratio.denominator
    src, dst, weight, delay = _edge_lists(circuit)
    if len(src) == 0:
        return False
    n = len(circuit)
    gains = [q * d - p * w for d, w in zip(delay, weight)]
    if HAVE_NUMPY:
        return _has_positive_cycle_numpy(n, src, dst, gains)
    # Pure fallback: Gauss-Seidel edge relaxation.  Without a positive
    # cycle the all-zero longest paths stabilize within n rounds; a
    # positive-gain cycle keeps improving its nodes forever.
    dist = [0] * n
    edges = list(zip(src, dst, gains))
    for _ in range(n + 1):
        improved = False
        for s, d, g in edges:
            cand = dist[s] + g
            if cand > dist[d]:
                dist[d] = cand
                improved = True
        if not improved:
            return False
    return True


def _has_positive_cycle_numpy(
    n: int, src: List[int], dst: List[int], gains: List[int]
) -> bool:
    """Vectorized (Jacobi) longest-path relaxation over the edge arrays."""
    src_a = np.asarray(src, dtype=np.int64)
    dst_a = np.asarray(dst, dtype=np.int64)
    # Exact arithmetic: accumulated distances reach ~n * max|gain|; switch
    # to Python-int (object) arrays when that nears the int64 range.
    bound = max((abs(g) for g in gains), default=0) * (n + 2)
    if bound < (1 << 62):
        gain = np.asarray(gains, dtype=np.int64)
        dist = np.zeros(n, dtype=np.int64)
    else:
        gain = np.asarray(gains, dtype=object)
        dist = np.zeros(n, dtype=object)
    # Longest-path relaxation from an implicit super-source (dist 0 at all
    # nodes).  Any positive-gain cycle keeps increasing its nodes forever;
    # without one, distances stabilize within n rounds.
    for _ in range(n + 1):
        candidate = dist[src_a] + gain
        new = dist.copy()
        np.maximum.at(new, dst_a, candidate)
        if np.array_equal(new, dist):
            return False
        dist = new
    return True


def min_feasible_period(
    circuit: SeqCircuit, upper_bound: Optional[int] = None
) -> int:
    """Smallest integer ``phi`` with no cycle ``d(C) > phi * w(C)``.

    This is the minimum clock period achievable by LUT-count-preserving
    retiming plus pipelining (unit delay model).  Raises ``ValueError``
    when a zero-weight (combinational) cycle exists.

    ``upper_bound`` is a hint from a caller that already holds a
    (believed) feasible period — e.g. the certificate cross-check of an
    achieved mapping — and narrows the binary search.  It is verified
    before use: a hint that turns out infeasible is ignored rather than
    trusted, so the result is identical with or without it.
    """
    lo, hi = 1, max(1, circuit.n_gates)
    if has_positive_cycle(circuit, Fraction(hi, 1)):
        raise ValueError("combinational cycle: MDR ratio is unbounded")
    if (
        upper_bound is not None
        and 1 <= upper_bound < hi
        and not has_positive_cycle(circuit, Fraction(upper_bound, 1))
    ):
        hi = upper_bound
    while lo < hi:
        mid = (lo + hi) // 2
        if has_positive_cycle(circuit, Fraction(mid, 1)):
            lo = mid + 1
        else:
            hi = mid
    return lo


def mdr_ratio(circuit: SeqCircuit) -> Fraction:
    """Exact maximum cycle ratio ``max_C d(C) / w(C)`` (0 when acyclic).

    Binary search over rationals: candidate ratios are fractions with
    numerator at most the gate count and denominator at most the total
    register count, so once the search interval is narrower than
    ``1 / q_max**2`` the unique representable fraction inside it is the
    answer.
    """
    n_delay = circuit.n_gates
    q_max = max(1, circuit.total_edge_weight)
    if not has_positive_cycle(circuit, Fraction(0, 1)):
        return Fraction(0, 1)
    lo = Fraction(0, 1)  # ratio > lo holds
    hi = Fraction(n_delay + 1, 1)  # ratio > hi fails
    min_gap = Fraction(1, 2 * q_max * q_max)
    while hi - lo > min_gap:
        mid = (lo + hi) / 2
        if has_positive_cycle(circuit, mid):
            lo = mid
        else:
            hi = mid
    # The answer is the unique fraction with denominator <= q_max in
    # (lo, hi]; limit_denominator on the midpoint finds it.
    answer = ((lo + hi) / 2).limit_denominator(q_max)
    if answer <= lo:
        answer = hi.limit_denominator(q_max)
    return answer


def critical_ratio_cycle(circuit: SeqCircuit) -> Optional[List[int]]:
    """One cycle achieving the MDR ratio, as a node list (or ``None``).

    Used by diagnostics and the examples; found by running the positive
    cycle test just below the MDR ratio and extracting a still-relaxing
    cycle through predecessor tracking.
    """
    ratio = mdr_ratio(circuit)
    if ratio == 0:
        return None
    # Test at ratio - epsilon: the critical cycle has positive gain there.
    eps = Fraction(1, 2 * max(1, circuit.total_edge_weight) ** 2)
    target = ratio - eps
    p, q = target.numerator, target.denominator
    src, dst, weight, delay = _edge_lists(circuit)
    gain = [q * d - p * w for d, w in zip(delay, weight)]
    n = len(circuit)
    dist = [0] * n  # exact ints (gains can be huge)
    pred = [-1] * n
    edge_count = len(src)
    last_improved = None
    for _round in range(n + 1):
        improved = False
        for i in range(edge_count):
            cand = dist[src[i]] + gain[i]
            if cand > dist[dst[i]]:
                dist[dst[i]] = cand
                pred[dst[i]] = src[i]
                improved = True
                last_improved = dst[i]
        if not improved:
            return None  # pragma: no cover - ratio>0 guarantees a cycle
    # Walk predecessors n steps to land inside a cycle, then extract it.
    v = last_improved
    for _ in range(n):
        v = pred[v]
    cycle = [v]
    u = pred[v]
    while u != v:
        cycle.append(u)
        u = pred[u]
    cycle.reverse()
    return cycle
