"""Pipelining + retiming to the MDR-ratio clock-period bound.

Pipelining inserts the same number of registers on the fanout edges of
every PI and retimes (paper Section 2); its effect is to free the I/O
paths from the clock-period constraint, leaving only loops — whose bound
is the MDR ratio [22].  In lag terms, inserting ``L`` pipeline stages is
``r(PI) = -L``, or equivalently (after normalization) letting POs take
positive lags, which is exactly the pipelined FEAS mode of
:mod:`repro.retime.leiserson`.

:func:`pipeline_and_retime` is the post-processing step every mapper in
this project shares: given a mapped LUT network it produces a circuit
whose measured clock period equals the integer MDR bound, plus the
per-output latency introduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.netlist.graph import SeqCircuit
from repro.retime.leiserson import RetimingResult, retime_for_period
from repro.retime.mdr import min_feasible_period


@dataclass
class PipelineResult:
    """A pipelined + retimed circuit achieving the MDR-bound period."""

    circuit: SeqCircuit
    phi: int  # achieved (and minimal) integer clock period
    po_lags: Dict[str, int]  # extra cycles of latency per PO
    retiming: RetimingResult


def pipeline_and_retime(
    circuit: SeqCircuit,
    phi: Optional[int] = None,
    minimize_ffs: bool = False,
) -> PipelineResult:
    """Retime with pipelining to period ``phi`` (default: the MDR bound).

    ``phi`` below the circuit's MDR bound raises ``ValueError`` — no
    amount of pipelining beats the loops.  ``minimize_ffs`` runs the
    register-minimization hill climb of :mod:`repro.retime.regmin` on the
    FEAS solution (the paper leaves "flipflop minimization ... for
    retiming [16]").
    """
    bound = min_feasible_period(circuit)
    if phi is None:
        phi = bound
    elif phi < bound:
        raise ValueError(
            f"period {phi} is below the MDR bound {bound}; "
            "pipelining cannot break loops"
        )
    result = retime_for_period(circuit, phi, allow_pipelining=True)
    assert result.period <= phi, "FEAS returned an over-period retiming"
    if minimize_ffs:
        from repro.retime.regmin import minimize_registers

        result = minimize_registers(circuit, phi, result.r)
    return PipelineResult(
        circuit=result.circuit,
        phi=phi,
        po_lags=result.po_lags,
        retiming=result,
    )
