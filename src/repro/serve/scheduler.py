"""The worker-lane scheduler: supervised execution of accepted jobs.

The service keeps the *decisions* (journal, state machine); the
scheduler keeps the *muscle*: ``max_active`` worker lanes (threads, each
of which may drive a whole process fleet for its job's parallel phi
probes), a FIFO hand-off queue, and a per-lane
:class:`~repro.resilience.breaker.CircuitBreaker`.

Supervision and graceful degradation: a lane that keeps failing on
infrastructure errors (broken process pools, injected faults, I/O
trouble) trips its breaker; while the breaker is open the lane *keeps
serving jobs* but clamps them to sequential in-process probing
(``workers=1``) — capacity degrades, availability doesn't.  The
breaker's cool-downs reuse the deterministic
:class:`~repro.resilience.retry.RetryPolicy` backoff, and a half-open
trial restores full parallelism on the first success.  Job-semantic
failures (invalid circuits, exhausted budgets, verification errors) are
the *job's* fault and never trip a breaker.

The ``worker-dispatch`` fault-injection site fires in the lane right
before it picks the job up — killing there crashes the service with the
job journaled but unstarted, which recovery must re-dispatch.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Dict, List, Optional

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import RetryPolicy

#: A runner executes one job on one lane; the lane's breaker tells it
#: whether parallel dispatch is currently allowed.
JobRunner = Callable[[str, CircuitBreaker], None]

_STOP = None  # queue sentinel


class Scheduler:
    """``max_active`` worker lanes draining a FIFO of accepted job ids."""

    def __init__(
        self,
        runner: JobRunner,
        max_active: int = 1,
        retry: Optional[RetryPolicy] = None,
        breaker_threshold: int = 3,
    ) -> None:
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        self._runner = runner
        self._max_active = max_active
        policy = retry if retry is not None else RetryPolicy(
            base_delay=0.5, max_delay=30.0
        )
        #: One breaker per lane: a poisoned fleet on lane 0 must not
        #: degrade lane 1's jobs.
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(failure_threshold=breaker_threshold, policy=policy)
            for _ in range(max_active)
        ]
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._lock = threading.Lock()
        #: job ids currently executing, by lane (observability).
        self.active: Dict[int, Optional[str]] = {
            lane: None for lane in range(max_active)
        }

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
        for lane in range(self._max_active):
            thread = threading.Thread(
                target=self._lane_loop,
                args=(lane,),
                name=f"repro-serve-lane-{lane}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: Optional[float] = None) -> None:
        """Stop lanes after the queue drains (one sentinel per lane)."""
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = [t for t in self._threads if t.is_alive()]
        self._started = False

    @property
    def running(self) -> bool:
        return self._started

    # -- dispatch -------------------------------------------------------
    def enqueue(self, job_id: str) -> None:
        self._queue.put(job_id)

    def backlog(self) -> int:
        """Jobs handed over but not yet picked up by a lane."""
        return self._queue.qsize()

    def _lane_loop(self, lane: int) -> None:
        breaker = self.breakers[lane]
        while True:
            job_id = self._queue.get()
            if job_id is _STOP:
                return
            self.active[lane] = job_id
            try:
                self._runner(job_id, breaker)
            finally:
                self.active[lane] = None
