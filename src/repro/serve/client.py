"""A small stdlib HTTP client for the mapping service.

:class:`ServeClient` wraps ``urllib`` (no third-party deps) and mirrors
the server's endpoint surface one method per route.  It is what the CLI,
the chaos harness and the CI smoke job use to talk to a served
instance; tests that don't need a socket drive
:class:`~repro.serve.service.MappingService` directly instead.

Admission control surfaces as :class:`QueueFull` carrying the parsed
``retry_after`` seconds — callers back off and retry rather than
hammering a shedding server.  :meth:`submit_with_backoff` does that
loop for suite-style callers.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional


class ServeError(RuntimeError):
    """A non-2xx response from the service (structured body attached)."""

    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {body}")
        self.status = status
        self.body = body


class QueueFull(ServeError):
    """Admission control rejected the job; retry after ``retry_after``."""

    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        super().__init__(status, body)
        self.retry_after = float(body.get("retry_after", 1.0))


class ServeClient:
    """Talk to one served :class:`MappingService` instance."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8731,
                 timeout: float = 60.0) -> None:
        self.base = f"http://{host}:{port}"
        self.timeout = timeout

    # -- transport ------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 content_type: str = "application/json") -> Dict[str, Any]:
        request = urllib.request.Request(
            self.base + path, data=body, method=method,
            headers={"Content-Type": content_type} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except ValueError:
                payload = {"error": "unparseable", "status": exc.code}
            if exc.code == 429:
                raise QueueFull(exc.code, payload) from exc
            raise ServeError(exc.code, payload) from exc

    def _post_json(self, path: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        return self._request(
            "POST", path, json.dumps(payload).encode("utf-8")
        )

    # -- endpoints ------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def readyz(self) -> Dict[str, Any]:
        return self._request("GET", "/readyz")

    def events(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/events")["events"]

    def upload_circuit(self, blif_text: str) -> str:
        out = self._request(
            "POST", "/circuits", blif_text.encode("utf-8"), "text/plain"
        )
        return out["circuit_id"]

    def submit(self, **job_fields: Any) -> Dict[str, Any]:
        """Submit one job (``circuit_id=...`` or ``blif=...`` + spec)."""
        return self._post_json("/jobs", job_fields)

    def submit_suite(self, circuits: List[Any],
                     algorithms: List[str],
                     **spec_fields: Any) -> List[Dict[str, Any]]:
        payload = dict(spec_fields)
        payload["circuits"] = circuits
        payload["algorithms"] = algorithms
        return self._post_json("/suite", payload)["jobs"]

    def submit_with_backoff(
        self, max_tries: int = 20,
        sleep: Callable[[float], None] = time.sleep,
        **job_fields: Any,
    ) -> Dict[str, Any]:
        """Submit, honoring ``Retry-After`` when the queue sheds load."""
        last: Optional[QueueFull] = None
        for _ in range(max_tries):
            try:
                return self.submit(**job_fields)
            except QueueFull as exc:
                last = exc
                sleep(exc.retry_after)
        assert last is not None
        raise last

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.25) -> Dict[str, Any]:
        """Block until a job is terminal (server-side bounded waits)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} not terminal in {timeout}s")
            chunk = max(poll, min(10.0, remaining))
            view = self._request("GET", f"/jobs/{job_id}?wait={chunk:.3f}")
            if view.get("state") in ("done", "failed", "cancelled"):
                return view

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel", b"{}")
