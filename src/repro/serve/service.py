"""The crash-only mapping service: journal + store + scheduler + jobs.

:class:`MappingService` is the same-process heart of ``repro.serve``:
the HTTP front end (:mod:`repro.serve.server`) and the CLI are thin
wrappers over it, and tests drive it directly.

The crash-only contract
-----------------------

Every externally visible transition is **journaled before it is acted
on** (:mod:`repro.serve.journal`).  The record vocabulary:

======================  ================================================
``accept``              job admitted (spec attached) — written *before*
                        the submitter is acknowledged
``start``               a worker lane picked the job up
``probe``               one phi probe completed (stage, phi, feasible,
                        labels) — the resume checkpoint
``bound``               TurboSYN's bound stage finished (its phi)
``note``                observability breadcrumb (store healing, breaker
                        degradation); replayed as a no-op
``cancel-request``      a client asked to cancel (honored at the next
                        probe boundary, surviving crashes)
``done`` / ``fail`` / ``cancelled``
                        terminal outcome (summary / structured error)
======================  ================================================

``kill -9`` at any instant therefore loses nothing that was
acknowledged: :meth:`recover` replays the journal, rebuilds the job
table, and re-enqueues every non-terminal job **seeded with its
journaled probe outcomes**.  Because the binary search adopts cached
probes verbatim and follows the identical trajectory
(:func:`repro.core.driver.search_min_phi`'s ``outcomes`` contract), the
resumed job produces phi, labels, certificates and mapped netlists
**bit-identical** to an uninterrupted run — it just skips the work
already journaled.

Crash-only also means: a :class:`~repro.serve.journal.JournalError` is
*fatal*.  The service must never act on a transition it failed to
journal, so the lane stops, the service flips unhealthy, and a
supervisor restart replays.

Admission control and degradation
---------------------------------

* Bounded intake: more than ``max_queue`` non-terminal jobs →
  :class:`AdmissionRejected` with a Retry-After estimate from the EWMA
  of recent job durations.  Rejection is immediate and structured —
  the service sheds load, it never hangs.
* Deadline pressure: per-job :class:`~repro.serve.jobs.JobBudget`
  quotas make overrunning jobs degrade to the best-known phi with a
  ``degraded_reason``, exactly like the offline mappers.
* Infrastructure pressure: a lane whose parallel fleets keep dying
  trips its circuit breaker and clamps jobs to sequential probing
  until a half-open trial succeeds (:mod:`repro.serve.scheduler`).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Union

from repro.cache.store import OutcomeCache
from repro.core.flowsyn_s import flowsyn_s
from repro.core.labels import LabelOutcome, LabelStats
from repro.core.turbomap import turbomap
from repro.core.turbosyn import turbosyn
from repro.kernel.share import publish_bytes
from repro.netlist.blif import write_blif
from repro.netlist.graph import SeqCircuit
from repro.perf.report import mapper_run
from repro.resilience.atomic import atomic_write_json
from repro.resilience.budget import BudgetExhausted
from repro.resilience.faultinject import fault_point
from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING_STATES,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    Job,
    JobBudget,
    JobSpec,
    ServiceStats,
    retry_after_estimate,
)
from repro.serve.journal import Journal, JournalError, Record
from repro.serve.scheduler import Scheduler
from repro.serve.store import CircuitStore

#: Exceptions that indicate *infrastructure* trouble (they trip the
#: lane's circuit breaker); everything else is the job's own fault.
_INFRA_ERRORS = (OSError, MemoryError)


class AdmissionRejected(RuntimeError):
    """The intake queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, pending: int, max_queue: int, retry_after: float) -> None:
        super().__init__(
            f"queue full ({pending}/{max_queue} jobs pending); "
            f"retry after {retry_after:.1f}s"
        )
        self.pending = pending
        self.max_queue = max_queue
        self.retry_after = retry_after

    def to_dict(self) -> Dict[str, Any]:
        return {
            "error": "queue_full",
            "pending": self.pending,
            "max_queue": self.max_queue,
            "retry_after": self.retry_after,
        }


class _JournalingOutcomes(dict):
    """A probe-cache dict that journals every *fresh* outcome.

    The searches treat ``outcomes`` as a plain mutable mapping; wrapping
    ``__setitem__`` turns each completed probe into a durable checkpoint
    *before* the search acts on it (the WAL append is synchronous, so
    the binary search cannot advance past an unjournaled probe).
    """

    def __init__(
        self,
        seed: Dict[int, LabelOutcome],
        on_probe: Callable[[int, LabelOutcome], None],
    ) -> None:
        super().__init__(seed)
        self._on_probe = on_probe

    def __setitem__(self, phi: int, outcome: LabelOutcome) -> None:
        fresh = phi not in self
        super().__setitem__(phi, outcome)
        if fresh:
            self._on_probe(phi, outcome)


def artifact_signature(artifact: Dict[str, Any]) -> str:
    """Stable content signature of a result artifact.

    Covers everything semantically meaningful — phi, LUT count, labels,
    the mapped netlist text, degradation status, and the certificate
    minus its wall-clock field — so two runs are bit-identical exactly
    when their signatures match, crash-resumed or not.
    """
    run = artifact.get("run", {})
    cert = dict(run.get("certificate") or {})
    cert.pop("t_verify", None)
    payload = {
        "phi": run.get("phi"),
        "luts": run.get("luts"),
        "degraded": run.get("degraded"),
        "degraded_reason": run.get("degraded_reason"),
        "labels": artifact.get("labels"),
        "mapped_blif": artifact.get("mapped_blif"),
        "certificate": cert,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class MappingService:
    """The mapping service: accepts jobs, survives ``kill -9``.

    ``state_dir`` holds everything durable::

        state_dir/
          journal.jsonl   # the write-ahead job journal
          store/          # content-addressed circuits + CSR blobs
          results/        # one JSON artifact per finished job

    Construction replays the journal (:meth:`recover`) but does not
    start lanes; call :meth:`start` to begin executing, or drive
    :meth:`run_job_inline` from tests.  ``budget_factory`` is a test
    hook mapping a :class:`JobSpec` to the :class:`JobBudget` used for
    its run (clock injection, tiny deadlines).
    """

    def __init__(
        self,
        state_dir: str,
        max_active: int = 1,
        max_queue: int = 8,
        breaker_threshold: int = 3,
        budget_factory: Optional[Callable[[JobSpec], JobBudget]] = None,
        compact_threshold: int = 4096,
    ) -> None:
        self.state_dir = os.fspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)
        os.makedirs(os.path.join(self.state_dir, "results"), exist_ok=True)
        self.store = CircuitStore(os.path.join(self.state_dir, "store"))
        # Outcome sidecar: persistent probe verdicts/labels keyed by the
        # store's content ids, so repeat jobs for a known circuit return
        # in O(verify) instead of re-searching (see repro.cache).
        self.cache = OutcomeCache(
            os.path.join(self.state_dir, "store", "outcomes")
        )
        self.max_queue = max_queue
        self.stats = ServiceStats()
        self._budget_factory = budget_factory or self._default_budget
        self._compact_threshold = compact_threshold
        self._lock = threading.RLock()
        self._terminal = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._budgets: Dict[str, JobBudget] = {}
        self._accepting = True
        self._fatal: Optional[str] = None
        self._t_started = time.monotonic()
        self.scheduler = Scheduler(
            self._run_job,
            max_active=max_active,
            breaker_threshold=breaker_threshold,
        )
        self.recovered: Dict[str, Any] = {}
        self._journal = self._recover()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _recover(self) -> Journal:
        """Replay the journal into the job table; re-enqueue pending jobs."""
        t0 = time.perf_counter()
        journal, records = Journal.open(
            os.path.join(self.state_dir, "journal.jsonl")
        )
        for record in records:
            self._replay(record)
        pending = [
            job
            for job in self._jobs.values()
            if job.state in PENDING_STATES or (
                job.cancel_requested and job.state not in TERMINAL_STATES
            )
        ]
        pending.sort(key=lambda job: job.seq)  # admission order survives
        for job in pending:
            job.state = QUEUED  # a crashed "running" job restarts
        self.recovered = {
            "records": len(records),
            "jobs": len(self._jobs),
            "replayed_pending": [job.id for job in pending],
            "seconds": round(time.perf_counter() - t0, 6),
        }
        if pending:
            self.stats.bump("replayed", len(pending))
        # Compact once the journal outgrows its live content; crash-safe
        # (atomic replace) and seq-preserving.
        if len(records) > self._compact_threshold:
            journal.compact(self._live_records())
        # Re-enqueue after the journal is ready: lanes may start running
        # these the moment start() is called.
        for job in pending:
            self.scheduler.enqueue(job.id)
        return journal

    def _replay(self, record: Record) -> None:
        """Apply one journal record to the in-memory job table."""
        kind = record.get("type")
        job_id = record.get("job")
        if kind == "accept":
            spec = JobSpec.from_dict(record["spec"])
            self._jobs[job_id] = Job(
                id=job_id, seq=int(record["seq"]), spec=spec
            )
            return
        job = self._jobs.get(job_id)
        if job is None or kind == "note":
            return
        seq = int(record.get("seq", 0))
        if kind == "start":
            job.state = RUNNING
            job.attempts += 1
        elif kind == "probe":
            stage = record.get("stage", "main")
            job.probes.setdefault(stage, {})[int(record["phi"])] = {
                "feasible": bool(record["feasible"]),
                "labels": list(record["labels"]),
                "seq": seq,
            }
        elif kind == "bound":
            job.bound_phi = int(record["phi"])
            job.bound_seq = seq
        elif kind == "cancel-request":
            job.cancel_requested = True
            job.cancel_seq = seq
        elif kind == "done":
            job.state = DONE
            job.result = record.get("summary")
            job.terminal_seq = seq
        elif kind == "fail":
            job.state = FAILED
            job.error = record.get("error")
            job.terminal_seq = seq
        elif kind == "cancelled":
            job.state = CANCELLED
            job.result = record.get("summary")
            job.terminal_seq = seq

    def _live_records(self) -> List[Record]:
        """Minimal records reproducing the current job table (compaction).

        Every record keeps its *original* journal seq (the fallback to
        the accept seq only covers pre-upgrade journals), so the
        compacted journal never invents duplicate seqs and replaying it
        recomputes the true high-water mark.
        """
        records: List[Record] = []
        for job in sorted(self._jobs.values(), key=lambda j: j.seq):
            records.append(
                {"type": "accept", "job": job.id, "spec": job.spec.to_dict(),
                 "seq": job.seq}
            )
            if job.state in TERMINAL_STATES:
                terminal_seq = job.terminal_seq or job.seq
                if job.state == DONE:
                    records.append(
                        {"type": "done", "job": job.id,
                         "summary": job.result, "seq": terminal_seq}
                    )
                elif job.state == FAILED:
                    records.append(
                        {"type": "fail", "job": job.id,
                         "error": job.error, "seq": terminal_seq}
                    )
                else:
                    records.append(
                        {"type": "cancelled", "job": job.id,
                         "summary": job.result, "seq": terminal_seq}
                    )
                continue
            for stage, stage_probes in job.probes.items():
                for phi, entry in sorted(stage_probes.items()):
                    records.append(
                        {"type": "probe", "job": job.id, "stage": stage,
                         "phi": phi, "feasible": entry["feasible"],
                         "labels": entry["labels"],
                         "seq": entry.get("seq") or job.seq}
                    )
            if job.bound_phi is not None:
                records.append(
                    {"type": "bound", "job": job.id, "phi": job.bound_phi,
                     "seq": job.bound_seq or job.seq}
                )
            if job.cancel_requested:
                records.append(
                    {"type": "cancel-request", "job": job.id,
                     "seq": job.cancel_seq or job.seq}
                )
        return records

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.scheduler.start()

    def stop(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting and wind lanes down.

        ``drain=True`` lets queued jobs finish; ``drain=False`` cancels
        every pending job first (their cancellation is journaled, so a
        later restart does not resurrect them).
        """
        with self._lock:
            self._accepting = False
            pending = [
                job.id
                for job in self._jobs.values()
                if job.state in PENDING_STATES
            ]
        if not drain:
            for job_id in pending:
                try:
                    self.cancel(job_id)
                except JournalError:
                    break  # shutting down anyway; journal is sacred
        self.scheduler.stop(timeout=timeout)
        self._journal.close()

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def submit_circuit(
        self, circuit_or_text: Union[SeqCircuit, str], **spec_fields: Any
    ) -> Dict[str, Any]:
        """Store a circuit (dedup by content) and submit a job over it."""
        circuit_id = self.store.put(circuit_or_text)
        return self.submit(JobSpec(circuit_id=circuit_id, **spec_fields))

    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        """Admit one job: WAL ``accept`` *then* acknowledge.

        Raises :class:`AdmissionRejected` (structured, immediate) when
        the pending count is at ``max_queue``, and ``RuntimeError`` when
        the service is draining or fatally wounded.
        """
        if not self.store.contains(spec.circuit_id):
            raise ValueError(f"unknown circuit id {spec.circuit_id!r}")
        with self._lock:
            if self._fatal is not None:
                raise RuntimeError(
                    f"service is unhealthy (journal failure: {self._fatal})"
                )
            if not self._accepting:
                raise RuntimeError("service is draining; not accepting jobs")
            pending = sum(
                1 for job in self._jobs.values()
                if job.state in PENDING_STATES
            )
            if pending >= self.max_queue:
                self.stats.bump("rejected")
                raise AdmissionRejected(
                    pending,
                    self.max_queue,
                    retry_after_estimate(
                        pending, self.stats.snapshot()["avg_job_seconds"]
                    ),
                )
            job_id = f"j{self._journal.seq + 1:06d}"
            seq = self._journal.append(
                {"type": "accept", "job": job_id, "spec": spec.to_dict()}
            )
            job = Job(id=job_id, seq=seq, spec=spec)
            self._jobs[job_id] = job
            self.stats.bump("submitted")
        self.scheduler.enqueue(job_id)
        return job.view()

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Journal a cancel request; cooperative, honored across crashes."""
        with self._lock:
            job = self._require(job_id)
            if job.state in TERMINAL_STATES:
                return job.view()
            job.cancel_seq = self._journal.append(
                {"type": "cancel-request", "job": job_id}
            )
            job.cancel_requested = True
            budget = self._budgets.get(job_id)
        if budget is not None:
            budget.cancel()
        return job.view()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id {job_id!r}")
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            return self._require(job_id).view()

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                job.view()
                for job in sorted(self._jobs.values(), key=lambda j: j.seq)
            ]

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.state_dir, "results", f"{job_id}.json")

    def result(self, job_id: str) -> Dict[str, Any]:
        """The full result artifact of a finished job."""
        job = self._require(job_id)
        if job.state not in TERMINAL_STATES:
            raise ValueError(f"job {job_id} is still {job.state}")
        if job.result is None:
            raise ValueError(f"job {job_id} {job.state}: {job.error}")
        path = self.result_path(job_id)
        # A job cancelled before it ran has a summary but no artifact
        # (e.g. reason=cancelled_queued): a structured error, not a
        # FileNotFoundError-turned-500.
        if "artifact" not in job.result or not os.path.exists(path):
            raise ValueError(
                f"job {job_id} {job.state} without a result artifact "
                f"(reason: {job.result.get('reason', 'unknown')})"
            )
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until ``job_id`` reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._terminal:
            while self._require(job_id).state not in TERMINAL_STATES:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still "
                        f"{self._require(job_id).state} after {timeout}s"
                    )
                self._terminal.wait(timeout=remaining)
            return self._require(job_id).view()

    def report(self) -> Dict[str, Any]:
        """A schema-6 suite report over every finished job.

        Each run carries its ``job`` envelope (id, attempts, journaled
        checkpoints, signature, store hygiene) and the report carries
        the ``service`` envelope (the :meth:`health` snapshot), so the
        offline tooling (:mod:`repro.perf.check`) can gate served
        sweeps exactly like batch ones.
        """
        from repro.perf.report import error_entry, suite_report

        runs: List[Dict[str, Any]] = []
        errors: List[Dict[str, Any]] = []
        for view in self.jobs():
            if view["state"] == DONE:
                with open(
                    self.result_path(view["id"]), encoding="utf-8"
                ) as fh:
                    runs.append(json.load(fh)["run"])
            elif view["state"] == FAILED:
                error = view.get("error") or {}
                errors.append(
                    error_entry(
                        view["spec"]["circuit_id"][:12],
                        view["spec"]["algorithm"],
                        RuntimeError(error.get("message", "unknown")),
                        stage="serve",
                    )
                )
                errors[-1]["error"] = error.get("error", "RuntimeError")
                errors[-1]["job"] = view["id"]
        return suite_report(runs, errors=errors, service=self.health())

    def journal_events(self) -> List[Record]:
        """The structured job-event log: every journal record, parsed.

        This is the observability feed (``GET /events``, the CI chaos
        artifact): one JSON object per transition, in WAL order.  A torn
        tail (crash mid-append) ends the list at the last complete
        record, mirroring what recovery would trust.
        """
        events: List[Record] = []
        try:
            with open(self._journal.path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        events.append(json.loads(line))
                    except ValueError:
                        break
        except OSError:
            pass
        return events

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` body: liveness + structured observability."""
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "status": "fatal" if self._fatal is not None else "ok",
                "fatal": self._fatal,
                "uptime_seconds": round(
                    time.monotonic() - self._t_started, 3
                ),
                "accepting": self._accepting,
                "jobs": states,
                "stats": self.stats.snapshot(),
                "journal": {
                    "seq": self._journal.seq,
                    "bytes": self._journal.size_bytes(),
                },
                "store": {
                    "circuits": len(self.store.circuit_ids()),
                    "blob_hits": self.store.blob_hits,
                    "blob_recompiles": self.store.blob_recompiles,
                    "outcomes": self.cache.stats(),
                },
                "breakers": [b.snapshot() for b in self.scheduler.breakers],
                "recovered": self.recovered,
            }

    def ready(self) -> Dict[str, Any]:
        """The ``/readyz`` body: can this instance take one more job?"""
        with self._lock:
            pending = sum(
                1 for job in self._jobs.values()
                if job.state in PENDING_STATES
            )
            ok = (
                self._fatal is None
                and self._accepting
                and pending < self.max_queue
            )
            return {
                "ready": ok,
                "pending": pending,
                "max_queue": self.max_queue,
            }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @staticmethod
    def _default_budget(spec: JobSpec) -> JobBudget:
        return JobBudget(
            deadline=spec.deadline, probe_timeout=spec.probe_timeout
        )

    def run_job_inline(self, job_id: str, lane: int = 0) -> Dict[str, Any]:
        """Execute one queued job on the caller's thread (test harness)."""
        self._run_job(job_id, self.scheduler.breakers[lane])
        return self.status(job_id)

    def _run_job(self, job_id: str, breaker) -> None:
        """One lane executing one job end to end (the scheduler runner)."""
        job = self._jobs[job_id]
        with self._lock:
            if job.state != QUEUED:
                # Terminal, or already claimed by another lane (a
                # duplicate enqueue after recovery): exactly one lane
                # may flip queued→running, and it happens under the
                # lock so a racing lane can never pass this guard.
                return
            if job.cancel_requested:
                # Cancelled while queued (possibly in a previous life).
                self._finish(
                    job, CANCELLED, summary={"reason": "cancelled_queued"}
                )
                return
            job.state = RUNNING  # claimed; other lanes bounce off above
        try:
            # Crash window: journaled as picked-up, nothing acted on yet.
            fault_point(
                "worker-dispatch", tag=f"{job_id}:{job.spec.circuit_id[:12]}"
            )
            with self._lock:
                self._journal.append({"type": "start", "job": job_id})
                job.attempts += 1
            self._execute(job, breaker)
        except JournalError as exc:
            # Crash-only: an unjournalable service must stop, not guess.
            with self._lock:
                self._fatal = str(exc)
                self._accepting = False
            raise
        except BudgetExhausted as exc:
            budget = self._budgets.get(job_id)
            cancelled = budget is not None and budget.cancelled
            self._finish(
                job,
                CANCELLED if cancelled else FAILED,
                summary={"reason": "cancelled"} if cancelled else None,
                error=None if cancelled else {
                    "error": type(exc).__name__,
                    "message": str(exc),
                    "reason": "budget_exhausted",
                },
            )
        except Exception as exc:  # noqa: BLE001 — the job fault boundary
            if isinstance(exc, _INFRA_ERRORS):
                breaker.record_failure()
            self._finish(
                job,
                FAILED,
                error={"error": type(exc).__name__, "message": str(exc)},
            )
        finally:
            self._budgets.pop(job_id, None)

    def _execute(self, job: Job, breaker) -> None:
        """Load, dispatch, checkpoint, commit — the happy path."""
        spec = job.spec
        t0 = time.perf_counter()
        circuit, meta = self.store.load(spec.circuit_id)
        if meta.get("recompiled"):
            # Store hygiene is an *event*, not a failure: breadcrumb it.
            self._journal.append(
                {"type": "note", "job": job.id, "what": "store-heal",
                 "blob_error": meta.get("blob_error")}
            )
        budget = self._budget_factory(spec)
        with self._lock:
            self._budgets[job.id] = budget
            if job.cancel_requested:
                budget.cancel()

        workers = spec.workers
        if workers > 1 and not breaker.allow():
            # Graceful degradation: the fleet is suspect, probe
            # sequentially rather than refuse the job.
            workers = 1
            self._journal.append(
                {"type": "note", "job": job.id, "what": "breaker-degraded",
                 "breaker": breaker.snapshot()}
            )
        csr_handle = None
        try:
            if workers > 1 and spec.kernel == "compiled":
                # Publish the *stored* blob: zero recompilation, and the
                # handle is caller-owned so pool restarts can't unlink it.
                csr_handle = publish_bytes(self.store.blob(spec.circuit_id))
            result = self._dispatch(job, circuit, budget, workers, csr_handle)
            if spec.workers > 1 and workers > 1:
                breaker.record_success()
            stats = result.total_stats
            if stats.outcome_cache_hits or stats.cache_probes_skipped:
                # Saved work is an *event* worth a breadcrumb, like
                # store healing; replayed as a no-op.
                self._journal.append(
                    {"type": "note", "job": job.id, "what": "cache-hit",
                     "hits": stats.outcome_cache_hits,
                     "probes_skipped": stats.cache_probes_skipped,
                     "seeds": stats.cache_seeds}
                )
        except _INFRA_ERRORS:
            raise  # _run_job records the breaker failure
        finally:
            if csr_handle is not None:
                try:
                    csr_handle.unlink()
                except Exception:  # noqa: BLE001 — cleanup only
                    pass

        seconds = time.perf_counter() - t0
        job_envelope = {
            "id": job.id,
            "attempts": job.attempts,
            "probes_journaled": sum(len(v) for v in job.probes.values()),
            "store": meta,
        }
        artifact = {
            "job": job.id,
            "circuit_id": spec.circuit_id,
            "spec": spec.to_dict(),
            "store": meta,
            "run": mapper_run(
                result, circuit=circuit, seconds=seconds, job=job_envelope
            ),
            "labels": list(result.labels),
            "mapped_blif": write_blif(result.mapped),
        }
        artifact["signature"] = artifact_signature(artifact)
        artifact["run"]["job"]["signature"] = artifact["signature"]
        atomic_write_json(self.result_path(job.id), artifact, indent=2)
        # Crash window: artifact durable, terminal record not yet written
        # — recovery re-runs the job and rewrites it bit-identically.
        fault_point("result-commit", tag=job.id)
        summary = {
            "phi": result.phi,
            "luts": result.n_luts,
            "degraded": result.degraded,
            "degraded_reason": result.degraded_reason,
            "seconds": round(seconds, 6),
            "signature": artifact["signature"],
            "artifact": self.result_path(job.id),
        }
        if budget.cancelled:
            self._finish(job, CANCELLED, summary=summary)
        else:
            self._finish(job, DONE, summary=summary)
            self.stats.observe_duration(seconds)

    def _dispatch(self, job, circuit, budget, workers, csr_handle):
        """Run the job's algorithm with journaled probe checkpoints."""
        spec = job.spec
        if spec.algorithm == "flowsyn-s":
            # One-shot structural algorithm: no phi search to checkpoint.
            return flowsyn_s(circuit, spec.k, check=spec.check)
        common = dict(
            workers=workers,
            budget=budget,
            engine=spec.engine,
            warm_start=spec.warm_start,
            max_copies=spec.max_copies,
            flow=spec.flow,
            kernel=spec.kernel,
            csr_handle=csr_handle,
            cache=self.cache,
        )
        if spec.algorithm == "turbomap":
            outcomes = self._seeded_outcomes(job, "main")
            return turbomap(
                circuit, spec.k, check=spec.check,
                outcomes=outcomes, **common,
            )
        # TurboSYN: two journaled stages.  Bound probes answer a different
        # question than main probes, so they checkpoint separately and
        # the finished bound is journaled (and skipped on resume).
        budget.start()  # the deadline covers both stages, as in turbosyn()
        if job.bound_phi is None:
            bound_outcomes = self._seeded_outcomes(job, "bound")
            bound = turbomap(
                circuit, spec.k, check=False,
                outcomes=bound_outcomes, **common,
            )
            job.bound_seq = self._journal.append(
                {"type": "bound", "job": job.id, "phi": bound.phi}
            )
            job.bound_phi = bound.phi
        outcomes = self._seeded_outcomes(job, "main")
        return turbosyn(
            circuit, spec.k, check=spec.check,
            upper_bound=job.bound_phi, outcomes=outcomes, **common,
        )

    def _seeded_outcomes(self, job: Job, stage: str) -> "_JournalingOutcomes":
        """The probe cache for one search stage: journaled checkpoints in,
        fresh probes journaled out."""
        seed: Dict[int, LabelOutcome] = {}
        for phi, entry in job.probes.get(stage, {}).items():
            # Stats are run telemetry, not results; a resumed probe is a
            # cache hit, so empty stats keep the telemetry honest.
            seed[phi] = LabelOutcome(
                feasible=entry["feasible"],
                labels=list(entry["labels"]),
                stats=LabelStats(),
            )

        def on_probe(phi: int, outcome: LabelOutcome) -> None:
            seq = self._journal.append(
                {
                    "type": "probe",
                    "job": job.id,
                    "stage": stage,
                    "phi": phi,
                    "feasible": outcome.feasible,
                    "labels": list(outcome.labels),
                }
            )
            job.probes.setdefault(stage, {})[phi] = {
                "feasible": outcome.feasible,
                "labels": list(outcome.labels),
                "seq": seq,
            }

        return _JournalingOutcomes(seed, on_probe)

    def _finish(
        self,
        job: Job,
        state: str,
        summary: Optional[Dict[str, Any]] = None,
        error: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Journal the terminal record, then flip the in-memory state."""
        record: Record = {"type": "", "job": job.id}
        if state == DONE:
            record["type"] = "done"
            record["summary"] = summary
        elif state == CANCELLED:
            record["type"] = "cancelled"
            if summary is not None:
                record["summary"] = summary
        else:
            record["type"] = "fail"
            record["error"] = error
        with self._lock:
            job.terminal_seq = self._journal.append(record)
            job.state = state
            job.result = summary
            job.error = error
            if state == DONE:
                self.stats.bump("completed")
            elif state == CANCELLED:
                self.stats.bump("cancelled")
            else:
                self.stats.bump("failed")
            self._terminal.notify_all()
