"""Content-addressed circuit store: dedup by hash, compile once, audit on load.

Circuits enter the service as BLIF text (or an in-memory
:class:`~repro.netlist.graph.SeqCircuit`); the store canonicalizes them
through :func:`repro.netlist.blif.write_blif` and addresses each by the
SHA-256 of that canonical text.  Two users uploading the same netlist —
whitespace, comment and ordering differences included — share one entry,
one compiled kernel, and (through the probe cache) one set of results.

Each entry holds two artifacts, both written atomically:

* ``<id>.blif`` — the canonical netlist text (the source of truth);
* ``<id>.csr`` — the compiled CSR kernel,
  :meth:`~repro.kernel.csr.CompiledCircuit.to_bytes` verbatim, so a job
  dispatched to the worker fleet can publish these bytes directly
  (:func:`repro.kernel.share.publish_bytes`) with zero recompilation
  or re-serialization in the service process.

Store hygiene: blobs are *audited before trust*.  :meth:`load` runs the
KERN001–006 integrity pack (:func:`repro.analysis.kernelrules.
audit_compiled`) over the deserialized kernel — a corrupted, truncated
or stale blob is rejected and the kernel recompiled from the canonical
BLIF (and the blob rewritten), degrading a disk-corruption incident to
one recompile instead of a failed job.

The ``store-put`` fault-injection site fires after both artifacts are
durable, i.e. in the "stored but caller not yet told" crash window.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.engine import Severity
from repro.analysis.kernelrules import audit_compiled
from repro.kernel.csr import CompiledCircuit, compile_circuit
from repro.netlist.blif import read_blif, write_blif
from repro.netlist.graph import SeqCircuit
from repro.resilience.atomic import atomic_write_bytes, atomic_write_text
from repro.resilience.faultinject import fault_point


class StoreError(ValueError):
    """A store entry is missing or unreadable."""


class CircuitStore:
    """On-disk content-addressed store of circuits + compiled CSR blobs."""

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        #: Hygiene counters (observability): blobs served from disk,
        #: blobs rejected by the KERN pack and recompiled.
        self.blob_hits = 0
        self.blob_recompiles = 0

    # -- paths ----------------------------------------------------------
    def _blif_path(self, circuit_id: str) -> str:
        return os.path.join(self.root, f"{circuit_id}.blif")

    def _csr_path(self, circuit_id: str) -> str:
        return os.path.join(self.root, f"{circuit_id}.csr")

    # -- ingestion ------------------------------------------------------
    @staticmethod
    def content_id(canonical_blif: str) -> str:
        """The content address: SHA-256 hex of the canonical BLIF text."""
        return hashlib.sha256(canonical_blif.encode("utf-8")).hexdigest()

    def put(self, circuit_or_text: Union[SeqCircuit, str]) -> str:
        """Insert a circuit (dedup by content); returns its circuit id.

        BLIF text is parsed and re-serialized so the address covers the
        *netlist*, not its formatting.  Existing entries are left
        untouched (the id is returned immediately); new entries write
        the canonical BLIF and the compiled CSR blob atomically.
        """
        if isinstance(circuit_or_text, SeqCircuit):
            circuit = circuit_or_text
        else:
            circuit, _info = read_blif(circuit_or_text)
        canonical = write_blif(circuit)
        circuit_id = self.content_id(canonical)
        if not os.path.exists(self._blif_path(circuit_id)):
            atomic_write_text(self._blif_path(circuit_id), canonical)
            atomic_write_bytes(
                self._csr_path(circuit_id), circuit.compiled().to_bytes()
            )
            fault_point("store-put", tag=circuit_id)
        return circuit_id

    # -- retrieval ------------------------------------------------------
    def contains(self, circuit_id: str) -> bool:
        return os.path.exists(self._blif_path(circuit_id))

    def circuit_ids(self) -> List[str]:
        return sorted(
            name[: -len(".blif")]
            for name in os.listdir(self.root)
            if name.endswith(".blif")
        )

    def blob(self, circuit_id: str) -> bytes:
        """The stored CSR blob bytes (for zero-copy fleet publication)."""
        try:
            with open(self._csr_path(circuit_id), "rb") as fh:
                return fh.read()
        except OSError as exc:
            raise StoreError(
                f"no CSR blob for circuit {circuit_id!r}: {exc}"
            ) from exc

    def load(self, circuit_id: str) -> Tuple[SeqCircuit, Dict[str, object]]:
        """Rebuild a circuit with its compiled kernel adopted.

        Returns ``(circuit, meta)``: ``meta["blob_reused"]`` is True when
        the stored blob passed the KERN audit and was adopted verbatim;
        a rejected/missing blob sets ``meta["recompiled"]`` (with
        ``meta["blob_error"]`` naming why) and the blob is rewritten
        from the fresh compile — the job proceeds either way.
        """
        path = self._blif_path(circuit_id)
        try:
            with open(path, encoding="utf-8") as fh:
                circuit, _info = read_blif(fh.read())
        except OSError as exc:
            raise StoreError(f"unknown circuit id {circuit_id!r}") from exc
        meta: Dict[str, object] = {"blob_reused": False, "recompiled": False}
        compiled, error = self._load_blob(circuit, circuit_id)
        if compiled is not None:
            circuit.adopt_compiled(compiled)
            self.blob_hits += 1
            meta["blob_reused"] = True
        else:
            # Hygiene fallback: recompile from the canonical netlist and
            # heal the stored blob so the next load is clean again.
            fresh = compile_circuit(circuit)
            circuit.adopt_compiled(fresh)
            atomic_write_bytes(self._csr_path(circuit_id), fresh.to_bytes())
            self.blob_recompiles += 1
            meta["recompiled"] = True
            meta["blob_error"] = error
        return circuit, meta

    def _load_blob(
        self, circuit: SeqCircuit, circuit_id: str
    ) -> Tuple[Optional[CompiledCircuit], Optional[str]]:
        """Deserialize + KERN-audit the stored blob; ``(None, why)`` on
        any rejection."""
        try:
            data = self.blob(circuit_id)
        except StoreError as exc:
            return None, str(exc)
        try:
            compiled = CompiledCircuit.from_bytes(data)
        except Exception as exc:  # torn/truncated/foreign bytes
            return None, f"{type(exc).__name__}: {exc}"
        try:
            diags = audit_compiled(circuit, compiled)
        except Exception as exc:  # structurally broken arrays
            return None, f"audit crashed: {type(exc).__name__}: {exc}"
        errors = [d for d in diags if d.severity is Severity.ERROR]
        if errors:
            first = errors[0]
            return None, f"{first.rule_id}: {first.message}"
        return compiled, None
