"""Asyncio HTTP front end over :class:`~repro.serve.service.MappingService`.

A deliberately tiny, dependency-free HTTP/1.1 server (``asyncio``
streams + hand-rolled request parsing — the container image has no web
framework, and the service surface is six endpoints):

====== ========================== =======================================
POST   ``/circuits``              upload BLIF text → ``{"circuit_id"}``
                                  (content-addressed; uploads dedup)
POST   ``/jobs``                  submit a job: JSON spec fields, plus
                                  either ``circuit_id`` or inline
                                  ``blif`` text → ``202`` + job view;
                                  ``429`` + ``Retry-After`` when the
                                  queue is full (admission control)
POST   ``/suite``                 one job per (circuit, algorithm) pair
GET    ``/jobs``                  all job views (admission order)
GET    ``/jobs/{id}``             one job view (``?wait=SECONDS`` blocks
                                  until terminal, bounded)
GET    ``/jobs/{id}/result``      the full result artifact (labels,
                                  mapped BLIF, certificate, signature)
POST   ``/jobs/{id}/cancel``      cooperative cancellation
GET    ``/healthz``               liveness + structured observability
GET    ``/readyz``                ``200``/``503`` readiness (capacity)
GET    ``/events``                the structured job-event log (the
                                  journal, one JSON record per line)
====== ========================== =======================================

Every service call runs in a worker thread (``run_in_executor``): the
journal fsyncs on each transition, and the event loop must keep
answering health probes while jobs grind.

Error mapping: ``AdmissionRejected`` → 429 (with both a ``Retry-After``
header and the structured body), ``KeyError`` → 404, ``ValueError`` →
400, draining/fatal ``RuntimeError`` → 503.  Responses are always JSON;
the server never hangs a rejected request.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.serve.jobs import ALGORITHMS, JobSpec
from repro.serve.service import AdmissionRejected, MappingService

_MAX_BODY = 64 * 1024 * 1024  # a BLIF upload ceiling, not a real limit


class _HttpError(Exception):
    def __init__(self, status: int, body: Dict[str, Any],
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(body.get("error", status))
        self.status = status
        self.body = body
        self.headers = headers or {}


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServeServer:
    """Bind a :class:`MappingService` to a TCP port."""

    def __init__(self, service: MappingService, host: str = "127.0.0.1",
                 port: int = 8731) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # Port 0 means "pick one"; reflect the real binding.
        if self.port == 0 and self._server.sockets:
            self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.get_running_loop().run_in_executor(
            None, self.service.stop
        )

    # -- connection handling --------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # Oversize upload: answer 413 without reading the
                    # body, then close — the unread bytes would desync
                    # any further keep-alive requests on this socket.
                    await self._respond(
                        writer, exc.status, exc.body,
                        {"Connection": "close", **exc.headers},
                    )
                    break
                if request is None:
                    break
                method, path, body = request
                status, payload, headers = await self._route(
                    method, path, body
                )
                await self._respond(writer, status, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if content_length > _MAX_BODY:
            raise _HttpError(413, {
                "error": "payload_too_large",
                "content_length": content_length,
                "max_bytes": _MAX_BODY,
            })
        body = (
            await reader.readexactly(content_length)
            if content_length else b""
        )
        return method, path, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict[str, Any],
                       headers: Dict[str, str]) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        head.extend(f"{name}: {value}" for name, value in headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    # -- routing --------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        path, _, query = path.partition("?")
        params = _parse_query(query)
        try:
            return await self._dispatch(method, path, body, params)
        except AdmissionRejected as exc:
            return 429, exc.to_dict(), {
                "Retry-After": str(int(exc.retry_after + 0.999))
            }
        except _HttpError as exc:
            return exc.status, exc.body, exc.headers
        except KeyError as exc:
            return 404, {"error": "not_found", "message": str(exc)}, {}
        except (ValueError, TypeError) as exc:
            return 400, {"error": "bad_request", "message": str(exc)}, {}
        except RuntimeError as exc:
            return 503, {"error": "unavailable", "message": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 — last-resort boundary
            return 500, {
                "error": type(exc).__name__, "message": str(exc)
            }, {}

    async def _dispatch(
        self, method: str, path: str, body: bytes, params: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        loop = asyncio.get_running_loop()

        def call(fn, *args, **kwargs):
            return loop.run_in_executor(
                None, lambda: fn(*args, **kwargs)
            )

        if path == "/healthz" and method == "GET":
            return 200, await call(self.service.health), {}
        if path == "/readyz" and method == "GET":
            ready = await call(self.service.ready)
            return (200 if ready["ready"] else 503), ready, {}
        if path == "/events" and method == "GET":
            return 200, await call(self._events), {}
        if path == "/circuits" and method == "POST":
            text = body.decode("utf-8")
            circuit_id = await call(self.service.store.put, text)
            return 200, {"circuit_id": circuit_id}, {}
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": await call(self.service.jobs)}, {}
        if path == "/jobs" and method == "POST":
            view = await call(self._submit_one, _json_body(body))
            return 202, view, {}
        if path == "/suite" and method == "POST":
            views = await call(self._submit_suite, _json_body(body))
            return 202, {"jobs": views}, {}
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if method == "POST" and rest.endswith("/cancel"):
                job_id = rest[: -len("/cancel")]
                return 200, await call(self.service.cancel, job_id), {}
            if method == "GET" and rest.endswith("/result"):
                job_id = rest[: -len("/result")]
                return 200, await call(self.service.result, job_id), {}
            if method == "GET" and "/" not in rest:
                if "wait" in params:
                    timeout = float(params["wait"])
                    try:
                        return 200, await call(
                            self.service.wait, rest, timeout
                        ), {}
                    except TimeoutError:
                        # Bounded wait elapsed: report the live state.
                        return 200, await call(
                            self.service.status, rest
                        ), {}
                return 200, await call(self.service.status, rest), {}
        raise _HttpError(
            405 if path in ("/jobs", "/suite", "/circuits") else 404,
            {"error": "no_such_route", "path": path, "method": method},
        )

    # -- endpoint bodies -------------------------------------------------
    def _submit_one(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        payload = dict(payload)
        blif = payload.pop("blif", None)
        if blif is not None:
            payload["circuit_id"] = self.service.store.put(blif)
        if "circuit_id" not in payload:
            raise ValueError("job needs either 'circuit_id' or 'blif'")
        return self.service.submit(JobSpec.from_dict(payload))

    def _submit_suite(self, payload: Dict[str, Any]) -> list:
        """One job per (circuit, algorithm): the service-side suite."""
        payload = dict(payload)
        circuits = payload.pop("circuits", [])
        algorithms = payload.pop("algorithms", ["turbomap"])
        for algorithm in algorithms:
            if algorithm not in ALGORITHMS:
                raise ValueError(f"unknown algorithm {algorithm!r}")
        circuit_ids = []
        for entry in circuits:
            if isinstance(entry, dict) and "blif" in entry:
                circuit_ids.append(self.service.store.put(entry["blif"]))
            elif isinstance(entry, str):
                circuit_ids.append(entry)
            else:
                raise ValueError(
                    "suite circuits must be ids or {'blif': ...} objects"
                )
        views = []
        for circuit_id in circuit_ids:
            for algorithm in algorithms:
                views.append(
                    self.service.submit(JobSpec.from_dict(
                        {**payload, "circuit_id": circuit_id,
                         "algorithm": algorithm}
                    ))
                )
        return views

    def _events(self) -> Dict[str, Any]:
        """The journal as a structured job-event log."""
        return {
            "events": self.service.journal_events(),
            "path": self.service._journal.path,
        }


def _parse_query(query: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for piece in query.split("&"):
        if "=" in piece:
            name, _, value = piece.partition("=")
            params[name] = value
    return params


def _json_body(body: bytes) -> Dict[str, Any]:
    if not body:
        raise ValueError("request body must be a JSON object")
    data = json.loads(body.decode("utf-8"))
    if not isinstance(data, dict):
        raise ValueError("request body must be a JSON object")
    return data


async def run_server(service: MappingService, host: str = "127.0.0.1",
                     port: int = 8731) -> None:
    """Start and serve until cancelled (the ``python -m repro.serve`` body)."""
    server = ServeServer(service, host=host, port=port)
    await server.start()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
