"""Crash-recovery differential harness: kill the service, prove nothing changed.

The acceptance bar of :mod:`repro.serve` is a *differential*: run a
suite of jobs cold (no interruptions) and record each result's content
signature; then run the same suite while crashing the service at a
journaled fault point, restart, let recovery resume, and assert every
accepted job reaches a terminal state with a signature **bit-identical**
to the cold run's.

Two harnesses, same differential:

* :func:`run_interrupt_differential` — in-process and fast.  Faults use
  the ``interrupt`` action (:class:`KeyboardInterrupt` passes through
  every ``except Exception`` boundary, exactly like a crash would skip
  them), the wounded service object is abandoned without cleanup, and a
  fresh :class:`~repro.serve.service.MappingService` on the same state
  directory replays.  This is what the test suite drives at every fault
  site.
* :func:`run_kill_differential` — subprocess-based and real.  The served
  instance runs ``python -m repro.serve`` with a ``REPRO_FAULT_PLAN``
  whose ``kill`` fault ``os._exit(43)``'s the process mid-operation
  (one-shot across restarts via the plan's ``state_dir`` markers); the
  harness restarts it until the suite drains.  This is the CI smoke job.

Both return a JSON-able report: per-job cold vs. recovered signatures,
restart counts, and the recovered journal's event log.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
import urllib.error
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.resilience import faultinject
from repro.resilience.faultinject import Fault, FaultPlan
from repro.serve.client import QueueFull, ServeClient, ServeError
from repro.serve.jobs import TERMINAL_STATES, JobSpec
from repro.serve.service import MappingService

#: The journaled crash windows the interrupt differential sweeps.
DEFAULT_SITES: Tuple[str, ...] = (
    "journal-append",
    "store-put",
    "worker-dispatch",
    "result-commit",
)


def demo_blif(n_gates: int = 40, seed: int = 1, name: str = "chaosdemo") -> str:
    """A small deterministic sequential benchmark as BLIF text.

    The repo ships no netlist files; the chaos harness and the CI smoke
    job need quick-but-real circuits with registered feedback loops, so
    this builds one from a seeded LCG (pure integer arithmetic — the
    same ``seed`` always yields the same netlist, hence the same
    content id in the store).
    """
    from repro.boolfn.truthtable import TruthTable
    from repro.netlist.blif import write_blif
    from repro.netlist.graph import SeqCircuit

    ops = [
        TruthTable.from_function(2, lambda a, b: a and b),
        TruthTable.from_function(2, lambda a, b: a or b),
        TruthTable.from_function(2, lambda a, b: a != b),
        TruthTable.from_function(2, lambda a, b: not (a and b)),
    ]
    state = seed & 0xFFFFFFFF

    def rand(bound: int) -> int:
        nonlocal state
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        return state % bound

    circuit = SeqCircuit(f"{name}{seed}")
    pool = [circuit.add_pi(f"x{i}") for i in range(4)]
    gates = []
    for i in range(n_gates):
        pins = [(pool[rand(len(pool))], 0), (pool[rand(len(pool))], 0)]
        gate = circuit.add_gate(f"g{i}", ops[rand(len(ops))], pins)
        pool.append(gate)
        gates.append(gate)
    # Registered feedback: rewire early gates' inputs to later gates
    # through 1-2 registers, creating genuine sequential loops.
    for _ in range(3):
        early = rand(len(gates) - 1)
        late = early + 1 + rand(len(gates) - early - 1)
        pins = [(p.src, p.weight) for p in circuit.fanins(gates[early])]
        pins[rand(2)] = (gates[late], 1 + rand(2))
        circuit.set_fanins(gates[early], pins)
    sinks = [g for g in gates if not circuit.fanouts(g)] or [gates[-1]]
    for j, gate in enumerate(sinks):
        circuit.add_po(f"out{j}", gate)
    circuit.check()
    return write_blif(circuit)


def _job_key(view: Dict[str, Any]) -> Tuple[str, str]:
    spec = view["spec"]
    return (spec["circuit_id"], spec["algorithm"])


# ----------------------------------------------------------------------
# in-process differential (interrupt faults)
# ----------------------------------------------------------------------
def _drain_inline(service: MappingService) -> None:
    """Run every queued job on this thread until none remain."""
    while True:
        queued = [
            view["id"] for view in service.jobs() if view["state"] == "queued"
        ]
        if not queued:
            return
        for job_id in queued:
            service.run_job_inline(job_id)


def cold_signatures_inline(
    state_dir: str,
    blifs: Sequence[str],
    algorithms: Sequence[str],
    **spec_fields: Any,
) -> Dict[Tuple[str, str], Dict[str, Any]]:
    """Run the suite uninterrupted; return ``{(circuit, algo): summary}``."""
    service = MappingService(state_dir, max_queue=max(8, len(blifs) * len(algorithms)))
    try:
        for blif in blifs:
            circuit_id = service.store.put(blif)
            for algorithm in algorithms:
                service.submit(JobSpec(
                    circuit_id=circuit_id, algorithm=algorithm, **spec_fields
                ))
        _drain_inline(service)
        out: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for view in service.jobs():
            if view["state"] != "done":
                raise RuntimeError(
                    f"cold run job {view['id']} ended {view['state']}: "
                    f"{view.get('error')}"
                )
            out[_job_key(view)] = view["result"]
        return out
    finally:
        service.stop(drain=False, timeout=1.0)


def run_interrupt_differential(
    state_root: str,
    blifs: Sequence[str],
    algorithms: Sequence[str] = ("turbomap",),
    sites: Sequence[str] = DEFAULT_SITES,
    at: int = 0,
    max_restarts: int = 25,
    **spec_fields: Any,
) -> Dict[str, Any]:
    """Sweep crash sites in-process; returns the differential report.

    For each site: install an ``interrupt`` fault (fires once), drive
    the suite inline, and every time the injected crash fires abandon
    the service object and recover a fresh one from the journal.  The
    report's ``"ok"`` is True iff every site's every completed job
    matched the cold signature.
    """
    cold = cold_signatures_inline(
        os.path.join(state_root, "cold"), blifs, algorithms, **spec_fields
    )
    expected = len(blifs) * len(algorithms)
    report: Dict[str, Any] = {"ok": True, "expected_jobs": expected, "sites": {}}
    for site in sites:
        site_dir = os.path.join(state_root, f"chaos-{site.replace('/', '_')}")
        faultinject.install(FaultPlan(faults=[
            Fault(site=site, action="interrupt", at=at, fires=1)
        ]))
        try:
            entry = _interrupt_round(
                site_dir, blifs, algorithms, cold, max_restarts, spec_fields
            )
        finally:
            faultinject.clear()
        report["sites"][site] = entry
        report["ok"] = report["ok"] and entry["ok"]
    return report


def _interrupt_round(
    state_dir: str,
    blifs: Sequence[str],
    algorithms: Sequence[str],
    cold: Dict[Tuple[str, str], Dict[str, Any]],
    max_restarts: int,
    spec_fields: Dict[str, Any],
) -> Dict[str, Any]:
    expected = len(blifs) * len(algorithms)
    crashes = 0
    service: Optional[MappingService] = None
    for _restart in range(max_restarts + 1):
        service = MappingService(
            state_dir, max_queue=max(8, expected)
        )
        try:
            # Top up: resubmit whatever was never accepted (a crash during
            # submit may or may not have journaled the accept record).
            have: Dict[Tuple[str, str], int] = {}
            for view in service.jobs():
                key = _job_key(view)
                have[key] = have.get(key, 0) + 1
            for blif in blifs:
                circuit_id = service.store.put(blif)
                for algorithm in algorithms:
                    if not have.get((circuit_id, algorithm)):
                        service.submit(JobSpec(
                            circuit_id=circuit_id, algorithm=algorithm,
                            **spec_fields,
                        ))
            _drain_inline(service)
        except KeyboardInterrupt:
            # The injected crash: abandon the instance exactly as a real
            # SIGKILL would — no terminal records, no cleanup, only the
            # journal survives.
            crashes += 1
            service._journal.close()
            continue
        break
    else:
        raise RuntimeError(f"{state_dir}: not drained after {max_restarts} restarts")
    assert service is not None
    views = service.jobs()
    service.stop(drain=False, timeout=1.0)
    mismatches = []
    for view in views:
        if view["state"] != "done":
            mismatches.append({"job": view["id"], "state": view["state"],
                               "error": view.get("error")})
            continue
        want = cold[_job_key(view)]["signature"]
        got = view["result"]["signature"]
        if want != got:
            mismatches.append({"job": view["id"], "cold": want, "got": got})
    replayed = sum(1 for view in views if view["attempts"] > 1) + sum(
        1 for view in views if view["probes_journaled"] > 0 and view["attempts"] == 1
    )
    return {
        "ok": not mismatches and len(views) >= expected and crashes > 0,
        "jobs": len(views),
        "crashes": crashes,
        "resumed_with_checkpoints": replayed,
        "mismatches": mismatches,
    }


# ----------------------------------------------------------------------
# subprocess differential (real SIGKILL via fault plan)
# ----------------------------------------------------------------------
def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(
    state_dir: str,
    port: int,
    env_extra: Optional[Dict[str, str]] = None,
    max_queue: int = 64,
) -> "subprocess.Popen[bytes]":
    """Spawn ``python -m repro.serve`` (stdout/err inherited)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env.update(env_extra or {})
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve",
            "--state-dir", state_dir,
            "--host", "127.0.0.1",
            "--port", str(port),
            "--max-queue", str(max_queue),
        ],
        env=env,
    )


def wait_ready(client: ServeClient, process: "subprocess.Popen[bytes]",
               timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"server exited {process.returncode} before becoming ready"
            )
        try:
            client.healthz()
            return
        except (urllib.error.URLError, ConnectionError, ServeError):
            time.sleep(0.1)
    raise TimeoutError("server did not become ready")


def run_kill_differential(
    state_root: str,
    blif_paths: Sequence[str],
    algorithms: Sequence[str] = ("turbomap",),
    kill_site: str = "journal-append",
    kill_at: int = 3,
    max_restarts: int = 10,
    timeout: float = 300.0,
    **spec_fields: Any,
) -> Dict[str, Any]:
    """The CI smoke differential: real server processes, real SIGKILL.

    1. Cold: serve from ``state_root/cold``, run the suite, record
       signatures, stop.
    2. Chaos: serve from ``state_root/chaos`` under a ``kill`` fault
       plan; submit the same suite; every time the process dies with
       :data:`~repro.resilience.faultinject.KILL_EXIT_CODE`, restart it
       and let journal replay resume; repeat until every job is
       terminal.
    3. Assert every job is ``done`` with the cold run's signature.

    Returns the JSON-able report (``"ok"`` is the verdict); the chaos
    journal (the structured job-event log) is left on disk for upload.
    """
    blifs = []
    for path in blif_paths:
        with open(path, encoding="utf-8") as fh:
            blifs.append(fh.read())

    report: Dict[str, Any] = {
        "ok": False,
        "kill_site": kill_site,
        "kill_at": kill_at,
        "expected_jobs": len(blifs) * len(algorithms),
    }

    # -- phase 1: cold --------------------------------------------------
    cold_views = _run_suite_subprocess(
        os.path.join(state_root, "cold"), blifs, algorithms,
        env_extra={}, max_restarts=0, timeout=timeout, **spec_fields
    )
    cold: Dict[Tuple[str, str], str] = {}
    for view in cold_views["jobs"]:
        if view["state"] != "done":
            report["error"] = f"cold job {view['id']} ended {view['state']}"
            return report
        cold[_job_key(view)] = view["result"]["signature"]
    report["cold"] = {"jobs": len(cold_views["jobs"]),
                      "restarts": cold_views["restarts"]}

    # -- phase 2: chaos -------------------------------------------------
    chaos_dir = os.path.join(state_root, "chaos")
    plan = {
        "state_dir": os.path.join(state_root, "fault-state"),
        "faults": [
            {"site": kill_site, "action": "kill", "at": kill_at, "fires": 1}
        ],
    }
    chaos_views = _run_suite_subprocess(
        chaos_dir, blifs, algorithms,
        env_extra={"REPRO_FAULT_PLAN": json.dumps(plan)},
        max_restarts=max_restarts, timeout=timeout, **spec_fields
    )
    report["chaos"] = {"jobs": len(chaos_views["jobs"]),
                       "restarts": chaos_views["restarts"]}
    report["journal"] = os.path.join(chaos_dir, "journal.jsonl")

    mismatches = []
    for view in chaos_views["jobs"]:
        if view["state"] != "done":
            mismatches.append({"job": view["id"], "state": view["state"],
                               "error": view.get("error")})
            continue
        want = cold.get(_job_key(view))
        got = view["result"]["signature"]
        if want != got:
            mismatches.append({"job": view["id"], "cold": want, "got": got})
    report["mismatches"] = mismatches
    report["ok"] = (
        not mismatches
        and len(chaos_views["jobs"]) >= report["expected_jobs"]
        and chaos_views["restarts"] >= 1  # the kill actually fired
    )
    return report


def _run_suite_subprocess(
    state_dir: str,
    blifs: Sequence[str],
    algorithms: Sequence[str],
    env_extra: Dict[str, str],
    max_restarts: int,
    timeout: float,
    **spec_fields: Any,
) -> Dict[str, Any]:
    """Serve, submit, survive crashes, drain; returns views + restarts."""
    port = free_port()
    client = ServeClient(port=port, timeout=30.0)
    max_queue = max(64, 2 * len(blifs) * len(algorithms))
    process = start_server(state_dir, port, env_extra, max_queue=max_queue)
    restarts = 0
    deadline = time.monotonic() + timeout
    try:
        wait_ready(client, process)
        while True:
            if time.monotonic() > deadline:
                raise TimeoutError(f"suite not drained within {timeout}s")
            try:
                views = client.jobs()
                have: Dict[Tuple[str, str], int] = {}
                for view in views:
                    key = _job_key(view)
                    have[key] = have.get(key, 0) + 1
                for blif in blifs:
                    circuit_id = client.upload_circuit(blif)
                    for algorithm in algorithms:
                        if not have.get((circuit_id, algorithm)):
                            client.submit_with_backoff(
                                circuit_id=circuit_id, algorithm=algorithm,
                                **spec_fields,
                            )
                views = client.jobs()
                if views and all(
                    view["state"] in TERMINAL_STATES for view in views
                ):
                    return {"jobs": views, "restarts": restarts}
                time.sleep(0.2)
            except (urllib.error.URLError, ConnectionError, QueueFull):
                # Server gone (the kill fired) or momentarily shedding.
                if process.poll() is None:
                    time.sleep(0.2)
                    continue
                if restarts >= max_restarts:
                    raise RuntimeError(
                        f"server died (exit {process.returncode}) and the "
                        f"restart budget ({max_restarts}) is spent"
                    )
                restarts += 1
                process = start_server(
                    state_dir, port, env_extra, max_queue=max_queue
                )
                wait_ready(client, process)
    finally:
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10.0)
