"""``python -m repro.serve`` — serve a state directory over HTTP.

Equivalent to ``repro serve`` (:mod:`repro.cli`); this entry point
exists so the service can be launched without the CLI installed, e.g.
by the chaos harness and the CI smoke job.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.serve.service import MappingService


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the crash-only mapping service.",
    )
    parser.add_argument("--state-dir", required=True,
                        help="durable state: journal, store, results")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8731,
                        help="TCP port (0 picks a free one)")
    parser.add_argument("--max-active", type=int, default=1,
                        help="concurrent worker lanes")
    parser.add_argument("--max-queue", type=int, default=8,
                        help="admission-control bound on pending jobs")
    args = parser.parse_args(argv)

    from repro.serve.server import ServeServer

    service = MappingService(
        args.state_dir,
        max_active=args.max_active,
        max_queue=args.max_queue,
    )
    server = ServeServer(service, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        print(
            f"repro-serve listening on {server.host}:{server.port} "
            f"(state: {service.state_dir}, recovered "
            f"{service.recovered.get('records', 0)} journal records, "
            f"{len(service.recovered.get('replayed_pending', []))} jobs "
            f"re-enqueued)",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
