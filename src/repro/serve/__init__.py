"""``repro.serve`` — the crash-only mapping service.

A long-running front end over the paper's mappers (TurboMap / TurboSYN
/ FlowSYN-s): accept mapping jobs over HTTP or in-process, dedup
circuits by content into a compiled-kernel store, schedule phi probes
across the existing worker fleet, and make **crashes boring**: every
transition is write-ahead journaled, so ``kill -9`` at any instant
resumes every accepted job from its last journaled probe with
bit-identical results.

Layering (each module's docstring carries its contract):

========================  =============================================
:mod:`~repro.serve.journal`    append-fsync-act WAL + torn-tail replay
:mod:`~repro.serve.store`      content-addressed circuits + CSR blobs,
                               KERN-audited on load
:mod:`~repro.serve.jobs`       specs, state machine, cancellable budgets
:mod:`~repro.serve.scheduler`  worker lanes + per-lane circuit breakers
:mod:`~repro.serve.service`    the orchestrator (admission, recovery,
                               execution, degradation)
:mod:`~repro.serve.server`     dependency-free asyncio HTTP front end
:mod:`~repro.serve.client`     stdlib urllib client (CLI / CI / chaos)
:mod:`~repro.serve.chaos`      the crash-recovery differential harness
========================  =============================================

Run it: ``python -m repro.serve --state-dir STATE --port 8731`` (or
``repro serve ...`` via the CLI).
"""

from repro.serve.client import QueueFull, ServeClient, ServeError
from repro.serve.jobs import Job, JobBudget, JobSpec
from repro.serve.journal import Journal, JournalError
from repro.serve.scheduler import Scheduler
from repro.serve.server import ServeServer, run_server
from repro.serve.service import (
    AdmissionRejected,
    MappingService,
    artifact_signature,
)
from repro.serve.store import CircuitStore, StoreError

__all__ = [
    "AdmissionRejected",
    "CircuitStore",
    "Job",
    "JobBudget",
    "JobSpec",
    "Journal",
    "JournalError",
    "MappingService",
    "QueueFull",
    "Scheduler",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "StoreError",
    "artifact_signature",
    "run_server",
]
