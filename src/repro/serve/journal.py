"""The write-ahead job journal: append, fsync, *then* act.

Every state transition of the mapping service goes through one
append-only JSONL file.  The discipline is strict write-ahead logging:

1. serialize the record, append it to the journal file;
2. flush + ``fsync`` so the record is on stable storage;
3. only then perform (or acknowledge) the action the record describes.

A process killed at *any* instant therefore leaves a journal from which
the full job table can be reconstructed: a record present means the
transition may or may not have been acted on (recovery redoes it
idempotently), a record absent means the action was never acknowledged
(the client's submit either errored or will be retried).  Nothing the
service accepted can silently vanish — the crash-only contract of
:mod:`repro.serve`.

Record format: one JSON object per line, always carrying ``type`` and a
monotonically increasing ``seq``.  The record vocabulary itself lives in
:mod:`repro.serve.service`; the journal is agnostic.

Torn tails: a crash mid-append (a real SIGKILL between ``write`` and
``fsync``, or a full disk) can leave a final partial line.  By the WAL
discipline that record was *never acted on*, so :meth:`Journal.open`
drops it: replay stops at the last complete record and the file is
truncated back to that point before new appends.

The ``journal-append`` fault-injection site fires after step 2 —
"journaled but not yet acted", the canonical crash-only test window.

Compaction: the journal grows one record per transition forever.
:meth:`Journal.compact` atomically replaces the file with a caller-
provided snapshot of live records (via the temp + rename + directory
fsync machinery of :mod:`repro.resilience.atomic`), so a crash during
compaction leaves either the full old journal or the complete snapshot.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.resilience.atomic import atomic_write_text, fsync_directory
from repro.resilience.faultinject import fault_point

Record = Dict[str, Any]


class JournalError(RuntimeError):
    """The journal could not be written — the service must treat this as
    fatal (crash-only: better to die and replay than to act unjournaled)."""


class Journal:
    """One append-only, fsync-per-record JSONL journal file."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._fh: Optional[Any] = None
        self._seq = 0
        # Appends come from every lane thread (probe checkpoints) as well
        # as the intake path; seq assignment and the write+flush+fsync
        # must be one atomic unit or concurrent appends tear lines.
        self._write_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------
    @classmethod
    def open(cls, path: str) -> "Tuple[Journal, List[Record]]":
        """Open (creating if absent) and replay a journal.

        Returns ``(journal, records)`` with the journal positioned for
        appending.  A torn final line is discarded and truncated away;
        ``seq`` continues from the last complete record.
        """
        journal = cls(path)
        records: List[Record] = []
        good_bytes = 0
        if os.path.exists(path):
            with open(path, "rb") as fh:
                for line in fh:
                    if not line.endswith(b"\n"):
                        break  # torn tail: record never acknowledged
                    try:
                        record = json.loads(line)
                    except ValueError:
                        break  # corrupt tail line
                    if not isinstance(record, dict) or "type" not in record:
                        break
                    records.append(record)
                    good_bytes += len(line)
            if good_bytes < os.path.getsize(path):
                with open(path, "r+b") as fh:
                    fh.truncate(good_bytes)
                    fh.flush()
                    os.fsync(fh.fileno())
        journal._seq = max(
            (int(r.get("seq", 0)) for r in records), default=0
        )
        journal._ensure_open()
        return journal, records

    def _ensure_open(self) -> None:
        if self._fh is None:
            created = not os.path.exists(self.path)
            self._fh = open(self.path, "a", encoding="utf-8")
            if created:
                # The file's *directory entry* must survive a power loss
                # too, or replay finds no journal at all.
                fsync_directory(self.path)

    def close(self) -> None:
        with self._write_lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- the WAL primitive ----------------------------------------------
    @property
    def seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._seq

    def append(self, record: Record) -> int:
        """Durably append one record; returns its ``seq``.

        The record is on stable storage when this returns — the caller
        may act on (or acknowledge) the transition.  Any I/O failure
        raises :class:`JournalError`: an unjournaled action must never
        be taken, so the caller's only safe move is to stop.

        Thread-safe: lanes checkpoint probes concurrently, and a torn or
        duplicate-seq line would truncate everything after it on replay.
        """
        payload = dict(record)
        with self._write_lock:
            self._ensure_open()
            assert self._fh is not None
            seq = self._seq + 1
            payload["seq"] = seq
            line = json.dumps(payload, separators=(",", ":"), sort_keys=False)
            try:
                self._fh.write(line + "\n")
                self._fh.flush()
                os.fsync(self._fh.fileno())
            except OSError as exc:
                raise JournalError(
                    f"journal append failed ({self.path}): {exc}"
                ) from exc
            self._seq = seq
        fault_point(
            "journal-append",
            tag=f"{payload.get('type', '?')}:{payload.get('job', '')}",
        )
        return seq

    # -- maintenance ----------------------------------------------------
    def compact(self, records: Iterable[Record]) -> None:
        """Atomically replace the journal with a snapshot of ``records``.

        Sequence numbers are preserved verbatim, and a ``compact``
        header record pins the pre-compaction high-water mark: even
        when the highest-seq live record was dropped (a ``note``, a
        superseded probe), a later :meth:`open` replays ``seq`` at or
        above every seq ever handed out, so numbering never regresses.
        """
        header: Record = {
            "type": "compact", "high_water": self._seq, "seq": self._seq,
        }
        lines = [
            json.dumps(dict(record), separators=(",", ":"))
            for record in [header, *records]
        ]
        text = "".join(line + "\n" for line in lines)
        with self._write_lock:
            self._close_locked()
            atomic_write_text(self.path, text)
            self._ensure_open()

    def size_bytes(self) -> int:
        """Current on-disk size (observability / overhead accounting)."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0
