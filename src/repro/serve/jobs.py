"""Job model of the mapping service: specs, states, cancellable budgets.

A *job* is one accepted mapping request: a circuit (by content id in the
store), an algorithm, and the engine/budget options of the existing
mapper entry points.  Jobs move through a tiny, strictly forward state
machine::

    queued ──► running ──► done
                       ├─► failed      (structured reason, never lost)
                       └─► cancelled   (cooperative; best-known result
                                        attached when one exists)

Every transition is journaled before it is acted on
(:mod:`repro.serve.journal`), so the state machine survives ``kill -9``
at any instant.  Terminal states are absorbing: recovery never demotes a
``done`` job, and a crash mid-``running`` replays back to ``queued``
with its completed probes seeded from the journal.

:class:`JobBudget` extends the per-run :class:`~repro.resilience.budget.
Budget` with cooperative cancellation: a cancel request sets an event
the search observes at its existing budget checkpoints (between probes),
so cancellation has exactly the semantics of deadline pressure — the
run stops at the next probe boundary and degrades to the best-known
answer, with ``"cancelled"`` as the reason.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.expanded import DEFAULT_MAX_COPIES
from repro.resilience.budget import Budget

#: Algorithms a job may request (the suite's report algorithms).
ALGORITHMS = ("flowsyn-s", "turbomap", "turbosyn")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a recovered job is re-enqueued from.
PENDING_STATES = (QUEUED, RUNNING)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """What to map and how — the JSON-able request half of a job."""

    circuit_id: str
    algorithm: str = "turbomap"
    k: int = 5
    workers: int = 1
    engine: str = "worklist"
    warm_start: bool = True
    max_copies: int = DEFAULT_MAX_COPIES
    flow: str = "dinic"
    kernel: str = "compiled"
    check: bool = True
    deadline: Optional[float] = None
    probe_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r} "
                f"(one of {', '.join(ALGORITHMS)})"
            )
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown job spec field(s): {sorted(unknown)}")
        return cls(**data)


@dataclass
class Job:
    """One accepted job: spec + live state + terminal outcome."""

    id: str
    seq: int  # journal seq of the accept record (admission order)
    spec: JobSpec
    state: str = QUEUED
    #: Journaled probe outcomes: ``{stage: {phi: {"feasible", "labels"}}}``
    #: — the crash checkpoint the search resumes from.
    probes: Dict[str, Dict[int, Dict[str, Any]]] = field(default_factory=dict)
    #: TurboSYN's journaled bound-stage optimum (skips the bound run on
    #: resume).
    bound_phi: Optional[int] = None
    #: Journal seqs of the bound / cancel-request / terminal records
    #: (compaction preserves each record's original seq; probe seqs live
    #: inside the ``probes`` entries).
    bound_seq: Optional[int] = None
    cancel_seq: Optional[int] = None
    terminal_seq: Optional[int] = None
    #: Terminal summary (phi, luts, degraded, signature, artifact path).
    result: Optional[Dict[str, Any]] = None
    #: Structured failure record (exception type, message).
    error: Optional[Dict[str, Any]] = None
    #: How many times a process picked this job up (1 + crash replays).
    attempts: int = 0
    #: A cancel request was journaled (honored at the next checkpoint,
    #: including across a crash).
    cancel_requested: bool = False

    def view(self) -> Dict[str, Any]:
        """JSON-able public status of this job."""
        out: Dict[str, Any] = {
            "id": self.id,
            "seq": self.seq,
            "state": self.state,
            "spec": self.spec.to_dict(),
            "attempts": self.attempts,
            "probes_journaled": sum(len(v) for v in self.probes.values()),
            "cancel_requested": self.cancel_requested,
        }
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        return out


class JobBudget(Budget):
    """A :class:`Budget` that can additionally be cancelled cooperatively.

    Cancellation raises through the same control-flow paths as deadline
    expiry (the searches already catch and degrade), but records
    ``"cancelled"`` as the reason so callers can distinguish the two.
    """

    def __init__(
        self,
        deadline: Optional[float] = None,
        probe_timeout: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(
            deadline=deadline, probe_timeout=probe_timeout, clock=clock
        )
        self._cancel = threading.Event()

    def cancel(self) -> None:
        """Request cooperative cancellation (observed between probes)."""
        self._cancel.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def expired(self) -> bool:
        return self._cancel.is_set() or super().expired()

    def check(self) -> None:
        self._raise_if_cancelled()
        super().check()

    def begin_probe(self) -> Optional[float]:
        self._raise_if_cancelled()
        return super().begin_probe()

    def _raise_if_cancelled(self) -> None:
        if self._cancel.is_set():
            from repro.resilience.budget import DeadlineExpired

            raise DeadlineExpired("job cancelled")

    def exhaust(self, exc: BaseException) -> None:
        if self._cancel.is_set():
            self.exhausted = True
            self.reason = "cancelled"
            self.note("cancelled", detail=str(exc))
        else:
            super().exhaust(exc)


def serialize_probes(
    probes: Dict[str, Dict[int, Dict[str, Any]]]
) -> Dict[str, Any]:
    """Journal-friendly form of a job's probe checkpoint (string keys)."""
    return {
        stage: {str(phi): entry for phi, entry in stage_probes.items()}
        for stage, stage_probes in probes.items()
    }


def deserialize_probes(data: Dict[str, Any]) -> Dict[str, Dict[int, Dict[str, Any]]]:
    """Inverse of :func:`serialize_probes`."""
    return {
        stage: {int(phi): entry for phi, entry in stage_probes.items()}
        for stage, stage_probes in data.items()
    }


class ServiceStats:
    """Thread-safe counters surfaced by ``/healthz`` and reports."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.replayed = 0
        #: EWMA of recent job wall-clock seconds (Retry-After estimates).
        self.avg_job_seconds = 1.0

    def bump(self, name: str, value: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + value)

    def observe_duration(self, seconds: float) -> None:
        with self._lock:
            self.avg_job_seconds = (
                0.7 * self.avg_job_seconds + 0.3 * max(seconds, 1e-3)
            )

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "submitted": self.submitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "replayed": self.replayed,
                "avg_job_seconds": round(self.avg_job_seconds, 6),
            }


#: Retry-After estimate: how long until a queue slot likely frees up.
def retry_after_estimate(pending: int, avg_job_seconds: float) -> float:
    return float(min(60.0, max(1.0, pending * avg_job_seconds)))


__all__: List[str] = [
    "ALGORITHMS",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "PENDING_STATES",
    "TERMINAL_STATES",
    "JobSpec",
    "Job",
    "JobBudget",
    "ServiceStats",
    "serialize_probes",
    "deserialize_probes",
    "retry_after_estimate",
]
