"""Invariant sanitizer: opt-in runtime assertion hooks (SAN0xx).

The static packs (:mod:`repro.analysis.invariants`,
:mod:`repro.analysis.kernelrules`, :mod:`repro.analysis.increrules`)
audit *results*; this module audits *executions*.  When enabled —
``REPRO_SANITIZE=1`` in the environment or :func:`enable` / the
``--sanitize`` CLI flag — cheap assertion hooks are wired into the hot
engines at construction time:

========  ==========================  =====================================
SAN001    label-monotonicity          labels never decrease across an epoch
SAN002    label-epoch-fixpoint        epoch budget respected; converged
                                      labels justified by their fanin
                                      maximum (``big_l <= l``, and
                                      ``l <= max(1, big_l + 1)`` without a
                                      resynthesis hook or warm seed)
SAN003    flow-conservation           net residual flow is zero at every
                                      internal node
SAN004    capacity-respect            residual capacities non-negative and
                                      forward/reverse pair sums preserved
SAN005    level-graph-sanity          every positive-capacity arc between
                                      BFS-reached nodes rises at most one
                                      level
SAN006    reused-label-exactness      clean gates of a dirty-seeded repair
                                      keep the adopted fixpoint verbatim
                                      and stay justified
========  ==========================  =====================================

A violated hook raises :class:`SanitizerViolation` carrying a full
:class:`~repro.analysis.engine.Diagnostic` — the caller decides whether
to render, collect, or abort.  The rules are registered under the
``"sanitizer"`` scope purely for metadata (SARIF descriptors, rule
listings); their check functions never run through the engine because
the hooks fire in-line.

``python -m repro.analysis.sanitize --selftest`` runs the seeded
mutation-testing harness: for every hook it injects one bug into the
engine under test (a label decrease, a phantom label bump, a flow
transfer, a negative capacity, a corrupted BFS level, a corrupted
adopted label) and asserts that exactly that hook catches it, and that
the unmutated runs stay silent.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import (
    TYPE_CHECKING,
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.engine import (
    Diagnostic,
    Location,
    Rule,
    Severity,
    all_rules,
    register,
)

if TYPE_CHECKING:  # imported lazily at runtime (repro.core imports us)
    from repro.core.labels import DirtySeed, LabelSolver
    from repro.kernel.dinic import DinicNetwork

#: Environment variable that switches the sanitizer on.
ENV_FLAG = "REPRO_SANITIZE"

#: Process-wide override set by :func:`enable`; ``None`` defers to the
#: environment.
_forced: Optional[bool] = None


def enabled() -> bool:
    """True when sanitizer hooks should be armed at construction time."""
    if _forced is not None:
        return _forced
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def enable(on: bool = True) -> None:
    """Force the sanitizer on (or off) regardless of the environment."""
    global _forced
    _forced = on


def reset() -> None:
    """Drop any :func:`enable` override; the environment decides again."""
    global _forced
    _forced = None


class SanitizerViolation(RuntimeError):
    """An armed invariant hook observed an impossible engine state."""

    def __init__(self, diagnostic: Diagnostic) -> None:
        super().__init__(diagnostic.render())
        self.diagnostic = diagnostic


def _violation(
    rule_id: str, message: str, loc: Location, **data: object
) -> SanitizerViolation:
    return SanitizerViolation(
        Diagnostic(rule_id, Severity.ERROR, message, loc, data=dict(data))
    )


def _descriptor_only(_ctx: object) -> Iterator[Diagnostic]:
    """Sanitizer rules fire from in-line hooks, never via ``run_rules``."""
    return iter(())


def _describe(rule_id: str, name: str, description: str) -> None:
    # Idempotent: ``python -m repro.analysis.sanitize`` loads this module
    # once as ``__main__`` and once canonically (via the engine hooks'
    # lazy imports); both executions hit the same shared registry.
    if any(r.id == rule_id for r in all_rules("sanitizer")):
        return
    register(
        Rule(rule_id, name, Severity.ERROR, "sanitizer", description,
             _descriptor_only)
    )


_describe(
    "SAN001",
    "label-monotonicity",
    "Within one label-solver run, node labels only increase: any epoch "
    "that lowers a label has corrupted the fixpoint iteration.",
)
_describe(
    "SAN002",
    "label-epoch-fixpoint",
    "An SCC must converge within its declared epoch budget, and every "
    "converged gate label must be justified by its fanin maximum: "
    "big_l(v) <= l(v) always, and l(v) <= max(1, big_l(v) + 1) when no "
    "resynthesis hook or warm seed can have lifted it.",
)
_describe(
    "SAN003",
    "flow-conservation",
    "After a max-flow run, the net flow at every node other than the "
    "source and the sink must be zero.",
)
_describe(
    "SAN004",
    "capacity-respect",
    "Residual capacities must stay non-negative and every forward/"
    "reverse edge pair must preserve its original capacity sum.",
)
_describe(
    "SAN005",
    "level-graph-sanity",
    "Right after a BFS phase, no positive-capacity arc between reached "
    "nodes may rise more than one level (Dinic's phase correctness "
    "rests on it).",
)
_describe(
    "SAN006",
    "reused-label-exactness",
    "Clean gates of a dirty-seeded repair must keep the adopted "
    "previous fixpoint verbatim: label >= 1, unchanged by the run, and "
    "still justified by the fanin maximum.",
)


# ----------------------------------------------------------------------
# LabelSolver hooks (SAN001 / SAN002 / SAN006)
# ----------------------------------------------------------------------
class LabelSanitizer:
    """Armed assertion hooks for one :class:`LabelSolver` run."""

    def __init__(
        self, solver: "LabelSolver", dirty_seed: Optional["DirtySeed"]
    ) -> None:
        self.solver = solver
        self.dirty_seed = dirty_seed

    def _loc(self, v: Optional[int] = None) -> Location:
        circuit = self.solver.circuit
        node = None if v is None else circuit.name_of(v)
        return Location(circuit.name, node)

    def snapshot(self, members: Sequence[int]) -> List[int]:
        labels = self.solver.labels
        return [labels[v] for v in members]

    def check_epoch(
        self, members: Sequence[int], before: Sequence[int]
    ) -> None:
        """SAN001: no member label decreased during the epoch."""
        labels = self.solver.labels
        for v, old in zip(members, before):
            if labels[v] < old:
                raise _violation(
                    "SAN001",
                    f"label of {self.solver.circuit.name_of(v)!r} "
                    f"decreased from {old} to {labels[v]} within one "
                    "epoch",
                    self._loc(v),
                    before=old,
                    after=labels[v],
                    phi=self.solver.phi,
                )

    def check_epoch_budget(self, used: int, budget: int) -> None:
        """SAN002 (budget half): an SCC ran more epochs than declared."""
        if used > budget:
            raise _violation(
                "SAN002",
                f"SCC iteration ran {used} epochs against a budget of "
                f"{budget}",
                self._loc(),
                epochs=used,
                budget=budget,
                phi=self.solver.phi,
            )

    def check_converged(self) -> None:
        """SAN002 / SAN006: fixpoint justification on a feasible return.

        Iterated gates (all of them on a cold run, the dirty region on
        a seeded repair) must satisfy ``big_l(v) <= l(v)`` — otherwise
        an update could still raise the label and the run did not
        converge — and, when neither a resynthesis hook nor a warm seed
        can have lifted labels past the K-cut bound,
        ``l(v) <= max(1, big_l(v) + 1)``.  Clean gates of a seeded
        repair fall under SAN006 instead: adopted verbatim, at least 1,
        and still justified.
        """
        s = self.solver
        circuit = s.circuit
        labels = s.labels
        phi = s.phi
        dirty = s._dirty
        seed = self.dirty_seed
        bounded_above = s.resyn_hook is None and s.stats.warm_seeded == 0
        for g in circuit.gates:
            pins = circuit.fanins(g)
            if not pins:
                continue
            big_l = max(labels[p.src] - phi * p.weight for p in pins)
            name = circuit.name_of(g)
            if dirty is not None and g not in dirty:
                if labels[g] < 1:
                    raise _violation(
                        "SAN006",
                        f"clean gate {name!r} carries adopted label "
                        f"{labels[g]} < 1",
                        self._loc(g),
                        label=labels[g],
                        phi=phi,
                    )
                if seed is not None and labels[g] != seed.prev_labels[g]:
                    raise _violation(
                        "SAN006",
                        f"clean gate {name!r} drifted from its adopted "
                        f"label {seed.prev_labels[g]} to {labels[g]}",
                        self._loc(g),
                        adopted=seed.prev_labels[g],
                        label=labels[g],
                        phi=phi,
                    )
                if big_l > labels[g]:
                    raise _violation(
                        "SAN006",
                        f"clean gate {name!r} holds label {labels[g]} "
                        f"below its fanin maximum {big_l}; the adopted "
                        "fixpoint is stale",
                        self._loc(g),
                        label=labels[g],
                        big_l=big_l,
                        phi=phi,
                    )
                continue
            if big_l > labels[g]:
                raise _violation(
                    "SAN002",
                    f"converged label {labels[g]} of gate {name!r} lies "
                    f"below its fanin maximum {big_l}",
                    self._loc(g),
                    label=labels[g],
                    big_l=big_l,
                    phi=phi,
                )
            if bounded_above and labels[g] > max(1, big_l + 1):
                raise _violation(
                    "SAN002",
                    f"converged label {labels[g]} of gate {name!r} "
                    f"exceeds the K-cut bound max(1, {big_l} + 1)",
                    self._loc(g),
                    label=labels[g],
                    big_l=big_l,
                    phi=phi,
                )


def label_sanitizer(
    solver: "LabelSolver", dirty_seed: Optional["DirtySeed"]
) -> Optional[LabelSanitizer]:
    """The hook object :class:`LabelSolver` installs when enabled."""
    if not enabled():
        return None
    return LabelSanitizer(solver, dirty_seed)


# ----------------------------------------------------------------------
# Dinic hooks (SAN003 / SAN004 / SAN005)
# ----------------------------------------------------------------------
class FlowSanitizer:
    """Armed assertion hooks for one :class:`DinicNetwork` arena.

    Records every edge's original capacity (``record_edge``) so the
    end-of-run checks can verify pair-sum preservation exactly; the
    record is cleared together with the arena on ``reset``.
    """

    def __init__(self) -> None:
        self.orig: List[int] = []

    def reset(self) -> None:
        self.orig.clear()

    def record_edge(self, cap: int) -> None:
        self.orig.extend((cap, 0))

    @staticmethod
    def _loc(net: "DinicNetwork") -> Location:
        return Location("dinic", f"n{net.num_nodes}e{len(net._to)}")

    def check_levels(
        self, net: "DinicNetwork", source: int, sink: int
    ) -> None:
        """SAN005: the freshly computed BFS levels are a level graph.

        The check models the two deliberate cutoffs of
        :meth:`DinicNetwork._bfs_levels`: the sink is never expanded,
        and a node whose successors would land exactly on the sink's
        level is skipped (``du == sink_level``) — arcs out of either
        may legitimately reach nodes labelled deeper, so only arcs
        whose tail was provably expanded are held to ``lv <= lu + 1``.
        """
        to = net._to
        cap = net._cap
        level = net._level
        if level[source] != 0:
            raise _violation(
                "SAN005",
                f"BFS assigned level {level[source]} to the source",
                self._loc(net),
                source=source,
            )
        sink_level = level[sink]
        for idx in range(len(to)):
            if cap[idx] <= 0:
                continue
            u = to[idx ^ 1]
            v = to[idx]
            if u == sink:
                continue  # the sink is never expanded
            lu = level[u]
            lv = level[v]
            if lu + 1 == sink_level:
                continue  # expansion skipped at the sink-level cutoff
            if lu >= 0 and lv >= 0 and lv > lu + 1:
                raise _violation(
                    "SAN005",
                    f"positive-capacity arc {u}->{v} jumps from level "
                    f"{lu} to level {lv}",
                    self._loc(net),
                    u=u,
                    v=v,
                    level_u=lu,
                    level_v=lv,
                )

    def check_flow(
        self, net: "DinicNetwork", source: int, sink: int
    ) -> None:
        """SAN003 / SAN004: conservation and capacity on the residual."""
        to = net._to
        cap = net._cap
        orig = self.orig
        n_edges = len(to)
        if len(orig) != n_edges:
            raise _violation(
                "SAN004",
                f"original-capacity record covers {len(orig)} edges, "
                f"the arena has {n_edges}",
                self._loc(net),
            )
        balance = [0] * net.num_nodes
        for idx in range(0, n_edges, 2):
            fwd, rev = cap[idx], cap[idx + 1]
            if fwd < 0 or rev < 0:
                raise _violation(
                    "SAN004",
                    f"negative residual capacity on edge pair {idx}: "
                    f"forward {fwd}, reverse {rev}",
                    self._loc(net),
                    edge=idx,
                )
            if fwd + rev != orig[idx] + orig[idx + 1]:
                raise _violation(
                    "SAN004",
                    f"edge pair {idx} holds capacity {fwd + rev}, "
                    f"original sum was {orig[idx] + orig[idx + 1]}",
                    self._loc(net),
                    edge=idx,
                )
            flow = rev  # reverse edges start at 0: residual = pushed
            u = to[idx + 1]
            v = to[idx]
            balance[u] -= flow
            balance[v] += flow
        for node, net_flow in enumerate(balance):
            if node in (source, sink):
                continue
            if net_flow != 0:
                raise _violation(
                    "SAN003",
                    f"node {node} accumulates net flow {net_flow} "
                    "(conservation violated)",
                    self._loc(net),
                    node=node,
                    net_flow=net_flow,
                )


def flow_sanitizer() -> Optional[FlowSanitizer]:
    """The hook object :class:`DinicNetwork` installs when enabled."""
    if not enabled():
        return None
    return FlowSanitizer()


# ----------------------------------------------------------------------
# Seeded mutation-testing harness
# ----------------------------------------------------------------------
def _buf_tt() -> object:
    from repro.boolfn.truthtable import TruthTable

    return TruthTable.from_function(1, lambda x: bool(x))


def _and2_tt() -> object:
    from repro.boolfn.truthtable import TruthTable

    return TruthTable.from_function(2, lambda a, b: bool(a and b))


def _chain_circuit() -> "object":
    """PI -> g1 -> g2 -> g3 -> PO buffer chain (acyclic, trivially
    feasible): every gate is its own SCC, so each selftest mutation in
    ``_update`` fires on a well-defined single update."""
    from repro.netlist.graph import SeqCircuit

    c = SeqCircuit("san-chain")
    buf = _buf_tt()
    pi = c.add_pi("in")
    g1 = c.add_gate("g1", buf, [(pi, 0)])
    g2 = c.add_gate("g2", buf, [(g1, 0)])
    g3 = c.add_gate("g3", buf, [(g2, 0)])
    c.add_po("out", g3, 0)
    return c


def _ring_circuit() -> Tuple["object", int, int]:
    """A registered ring (ga <-> gb) plus an independent side gate gc.

    Returns ``(circuit, ring_gate_id, side_gate_id)``; the side gate is
    the dirty seed of the SAN006 scenario, leaving the ring wholly
    clean (and therefore skipped, preserving any corrupted adoption).
    """
    from repro.netlist.graph import SeqCircuit

    c = SeqCircuit("san-ring")
    buf = _buf_tt()
    and2 = _and2_tt()
    pi = c.add_pi("in")
    ga = c.add_gate_placeholder("ga", and2)
    gb = c.add_gate("gb", buf, [(ga, 0)])
    c.set_fanins(ga, [(pi, 0), (gb, 1)])
    c.add_po("out", gb, 0)
    gc = c.add_gate("gc", buf, [(pi, 0)])
    c.add_po("side", gc, 0)
    return c, ga, gc


def _run_solver(
    circuit: object, phi: int, dirty_seed: Optional["DirtySeed"] = None
) -> "object":
    from repro.core.labels import LabelSolver

    solver = LabelSolver(circuit, k=5, phi=phi, dirty_seed=dirty_seed)  # type: ignore[arg-type]
    return solver.run()


def _mutate_update_decrease() -> None:
    """SAN001 seed: one ``_update`` call zeroes the label it just set."""
    from repro.core.labels import LabelSolver

    original = LabelSolver._update
    armed = [True]

    def corrupted(self: "LabelSolver", v: int) -> bool:
        rose = original(self, v)
        if armed[0]:
            armed[0] = False
            self.labels[v] = 0
        return rose

    LabelSolver._update = corrupted  # type: ignore[method-assign]
    try:
        _run_solver(_chain_circuit(), phi=1)
    finally:
        LabelSolver._update = original  # type: ignore[method-assign]


def _mutate_update_overshoot() -> None:
    """SAN002 seed: one ``_update`` call bumps the label by 2 (an
    increase, so SAN001 stays silent; the fixpoint bound catches it)."""
    from repro.core.labels import LabelSolver

    original = LabelSolver._update
    armed = [True]

    def corrupted(self: "LabelSolver", v: int) -> bool:
        rose = original(self, v)
        if armed[0]:
            armed[0] = False
            self.labels[v] += 2
        return rose

    LabelSolver._update = corrupted  # type: ignore[method-assign]
    try:
        _run_solver(_chain_circuit(), phi=1)
    finally:
        LabelSolver._update = original  # type: ignore[method-assign]


def _dinic_network() -> Tuple["DinicNetwork", int, int]:
    from repro.kernel.dinic import DinicNetwork

    net = DinicNetwork()
    s, a, b, t = net.add_nodes(4)
    net.add_edge(s, a, 2)
    net.add_edge(a, b, 1)
    net.add_edge(a, t, 1)
    net.add_edge(b, t, 2)
    return net, s, t


def _mutate_augment_transfer() -> None:
    """SAN003 seed: after one augmentation, move one capacity unit from
    a forward edge to its reverse — pair sums and non-negativity hold
    (SAN004 silent), but the phantom flow breaks conservation."""
    from repro.kernel.dinic import DinicNetwork

    original = DinicNetwork._augment
    armed = [True]

    def corrupted(self: "DinicNetwork", source: int, sink: int) -> int:
        pushed = original(self, source, sink)
        if armed[0] and pushed:
            armed[0] = False
            for idx in range(0, len(self._cap), 2):
                if self._cap[idx] >= 1:
                    self._cap[idx] -= 1
                    self._cap[idx ^ 1] += 1
                    break
        return pushed

    DinicNetwork._augment = corrupted  # type: ignore[method-assign]
    try:
        net, s, t = _dinic_network()
        net.max_flow(s, t, limit=10)
    finally:
        DinicNetwork._augment = original  # type: ignore[method-assign]


def _mutate_augment_negative() -> None:
    """SAN004 seed: after one augmentation, force a forward capacity to
    -2 — conservation reads only reverse capacities (SAN003 silent)."""
    from repro.kernel.dinic import DinicNetwork

    original = DinicNetwork._augment
    armed = [True]

    def corrupted(self: "DinicNetwork", source: int, sink: int) -> int:
        pushed = original(self, source, sink)
        if armed[0] and pushed:
            armed[0] = False
            self._cap[0] = -2
        return pushed

    DinicNetwork._augment = corrupted  # type: ignore[method-assign]
    try:
        net, s, t = _dinic_network()
        net.max_flow(s, t, limit=10)
    finally:
        DinicNetwork._augment = original  # type: ignore[method-assign]


def _mutate_bfs_level() -> None:
    """SAN005 seed: corrupt one reached node's BFS level upward by 1 —
    its BFS parent then feeds it across two levels."""
    from repro.kernel.dinic import DinicNetwork

    original = DinicNetwork._bfs_levels
    armed = [True]

    def corrupted(self: "DinicNetwork", source: int, sink: int) -> bool:
        reached = original(self, source, sink)
        if armed[0] and reached:
            armed[0] = False
            for v in range(self.num_nodes):
                if self._level[v] >= 1:
                    self._level[v] += 1
                    break
        return reached

    DinicNetwork._bfs_levels = corrupted  # type: ignore[method-assign]
    try:
        net, s, t = _dinic_network()
        net.max_flow(s, t, limit=10)
    finally:
        DinicNetwork._bfs_levels = original  # type: ignore[method-assign]


def _mutate_adopted_label() -> None:
    """SAN006 seed: corrupt the adopted previous label of a clean ring
    gate to 0 and repair with an unrelated dirty seed — the ring SCC is
    skipped, so only the reuse hook can notice."""
    from repro.core.labels import DirtySeed

    circuit, ring_gate, side_gate = _ring_circuit()
    cold = _run_solver(circuit, phi=2)
    assert cold.feasible
    prev = list(cold.labels)
    prev[ring_gate] = 0
    _run_solver(
        circuit, phi=2, dirty_seed=DirtySeed(prev, frozenset({side_gate}))
    )


def _clean_runs() -> None:
    """Unmutated runs of every selftest scenario must stay silent."""
    from repro.core.labels import DirtySeed

    _run_solver(_chain_circuit(), phi=1)
    net, s, t = _dinic_network()
    flow = net.max_flow(s, t, limit=10)
    assert flow == 2, f"selftest network has max flow {flow}, want 2"
    circuit, _ring_gate, side_gate = _ring_circuit()
    cold = _run_solver(circuit, phi=2)
    assert cold.feasible
    _run_solver(
        circuit,
        phi=2,
        dirty_seed=DirtySeed(list(cold.labels), frozenset({side_gate})),
    )


#: The harness: (rule expected to fire, scenario with one seeded bug).
_MUTATIONS: List[Tuple[str, Callable[[], None]]] = [
    ("SAN001", _mutate_update_decrease),
    ("SAN002", _mutate_update_overshoot),
    ("SAN003", _mutate_augment_transfer),
    ("SAN004", _mutate_augment_negative),
    ("SAN005", _mutate_bfs_level),
    ("SAN006", _mutate_adopted_label),
]


def selftest() -> List[str]:
    """Run the mutation harness; returns failure descriptions (empty =
    every hook caught exactly its seeded bug and clean runs are silent).
    """
    global _forced
    failures: List[str] = []
    was_forced = _forced
    enable(True)
    try:
        try:
            _clean_runs()
        except SanitizerViolation as exc:
            failures.append(
                f"clean run raised {exc.diagnostic.rule_id}: "
                f"{exc.diagnostic.message}"
            )
        except AssertionError as exc:
            failures.append(f"clean run broke: {exc}")
        for expected, scenario in _MUTATIONS:
            try:
                scenario()
            except SanitizerViolation as exc:
                got = exc.diagnostic.rule_id
                if got != expected:
                    failures.append(
                        f"{expected}: seeded mutation tripped {got} "
                        f"instead ({exc.diagnostic.message})"
                    )
                continue
            failures.append(f"{expected}: seeded mutation was not caught")
    finally:
        _forced = was_forced
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.sanitize",
        description="Invariant sanitizer selftest: prove every SAN0xx "
        "hook catches its seeded mutation",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the seeded mutation-testing harness",
    )
    args = parser.parse_args(argv)
    if not args.selftest:
        parser.print_help()
        return 2
    failures = selftest()
    for line in failures:
        print(f"FAIL {line}")
    if failures:
        print(f"sanitizer selftest: {len(failures)} failure(s)")
        return 1
    print(
        f"sanitizer selftest: {len(_MUTATIONS)} seeded mutation(s) "
        "caught, clean runs silent"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    # Delegate to the canonical module so the hooks (which import
    # ``repro.analysis.sanitize``) raise the same SanitizerViolation
    # class the harness catches.
    from repro.analysis.sanitize import main as _canonical_main

    sys.exit(_canonical_main())
