"""Invariant rule pack: verify mapping and retiming results post hoc.

Translation-validation style checks of the guarantees the mapping core
claims for its output (paper Sections 2-4):

* **MAP001 retiming-legality** — a retiming vector ``r`` is legal iff
  every retimed weight ``w_r(e) = w(e) + r(v) - r(u)`` is non-negative
  (Leiserson-Saxe).
* **MAP002 lut-k-feasible** — every emitted LUT's cut (its fanin pins)
  has at most K nodes, re-derived from the mapped network itself.
* **MAP003 label-height** — the cut realizing gate ``v`` has height
  ``height(X_v) = max(l(u) - phi*w + 1) <= l(v)`` under the converged
  labels (the invariant the label computation maintains).
* **MAP004 phi-mdr-bound** — the achieved period ``phi`` respects the
  MDR-ratio lower bound over all loops of the *mapped* network: no cycle
  may satisfy ``d(C) > phi * w(C)`` (cycle-ratio check via
  :mod:`repro.retime.mdr`).
* **MAP005 cone-function** — each plain LUT's truth table equals the
  exact sequential cone function between its cut copies and its root in
  the subject circuit, re-derived through the expanded-circuit semantics
  (every path from cut copy ``u^w`` to the root crosses exactly ``w``
  registers).
* **MAP006 label-domain** — labels have the right shape: one per subject
  node, 0 on PIs, at least 1 on gates.
* **MAP007 csr-patch-roundtrip** — an incrementally patched compiled
  CSR (:mod:`repro.incremental.patch`) must serialize (``to_bytes``)
  byte-identically to a fresh compile of the subject: a delta patch is
  only acceptable if it is indistinguishable from recompiling.
* **MAP008 csr-shape** — the patched CSR's arrays are structurally
  sound: node/pin counts, monotone offsets, kind codes and pack shift
  all match the subject.

MAP007/MAP008 run only when the driver hands the verifier the compiled
kernel an incremental run actually probed on (cold runs compile fresh,
so the round-trip holds trivially and is skipped).

Resynthesized LUT trees are skipped by MAP003/MAP005: decomposition
moves logic *off* the loop, so the plain-cut height/cone invariants
deliberately do not apply to them.  The driver passes the authoritative
set of resynthesized subject nodes (``resyn_roots``); without it the
verifier falls back to the ``base~sN`` naming convention, which cannot
see single-LUT trees — a cone-coverage failure then degrades to an INFO
finding rather than an ERROR.

:func:`verify_mapping` bundles the mapping pack with a structural pass
over the mapped network; :func:`certificate` condenses the outcome into
the machine-readable summary attached to ``SeqMapResult``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import AbstractSet, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.engine import (
    CircuitContext,
    Diagnostic,
    Location,
    Severity,
    all_rules,
    has_errors,
    rule,
    run_rules,
    sort_diagnostics,
)
from repro.analysis.structural import lint_circuit
from repro.core.expanded import sequential_cone_function
from repro.kernel.csr import (
    CompiledCircuit,
    compile_circuit,
    kind_code,
    pack_shift,
)
from repro.netlist.graph import NodeKind, SeqCircuit
from repro.retime.mdr import has_positive_cycle, min_feasible_period

#: Resynthesis trees name their internal LUTs ``<base>~s<j>``.
RESYN_MARK = "~s"

#: Widest cut the dense cone-function recomputation evaluates.
MAX_CONE_CUT = 16


@dataclass
class MappingContext:
    """Context of the ``"mapping"`` scope: a subject/mapped pair."""

    subject: SeqCircuit
    mapped: SeqCircuit
    phi: int
    labels: Sequence[int]  # empty when the mapper computed none (FlowSYN-s)
    k: int
    algorithm: str = ""
    file: Optional[str] = None
    #: subject node names realized by resynthesis trees, when the caller
    #: (the mapping driver) knows them exactly; ``None`` means unknown
    #: and the verifier falls back to the naming convention.
    resyn_roots: Optional[AbstractSet[str]] = None
    #: the compiled CSR kernel the run probed on, when it was produced
    #: by delta patching (:mod:`repro.incremental`); ``None`` (cold
    #: runs) skips the round-trip rules MAP007/MAP008.
    compiled: Optional[CompiledCircuit] = None
    #: pre-built certificate blobs from :mod:`repro.analysis.certify`;
    #: ``None`` makes RET002/RET003 construct their own on the fly.
    schedule_cert: Optional[Dict[str, object]] = None
    cycle_cert: Optional[Dict[str, object]] = None

    def loc(self, nid: Optional[int] = None) -> Location:
        node = None if nid is None else self.mapped.name_of(nid)
        return Location(self.mapped.name, node, self.file)

    def subject_id(self, name: str) -> Optional[int]:
        return self.subject.id_of(name) if name in self.subject else None

    def is_resyn_member(self, nid: int) -> bool:
        """True for internal tree LUTs and for roots wired to them.

        With ``resyn_roots`` provided this is exact; otherwise the
        ``base~sN`` naming convention identifies trees — except trees
        that collapsed to a single LUT, which keep the bare base name.
        """
        name = self.mapped.name_of(nid)
        if self.resyn_roots is not None and name in self.resyn_roots:
            return True
        if RESYN_MARK in name:
            return True
        return any(
            RESYN_MARK in self.mapped.name_of(p.src)
            for p in self.mapped.fanins(nid)
        )

    def plain_luts(self) -> Iterator[Tuple[int, int, List[Tuple[int, int]]]]:
        """Mapped LUTs with a full subject correspondence.

        Yields ``(mapped_id, subject_id, cut)`` where ``cut`` is the
        fanin pin list translated to subject node ids; LUTs belonging to
        resynthesis trees or without a by-name subject counterpart are
        skipped (their invariants are different or unverifiable).
        """
        for g in self.mapped.gates:
            if self.is_resyn_member(g):
                continue
            v = self.subject_id(self.mapped.name_of(g))
            if v is None or self.subject.kind(v) is not NodeKind.GATE:
                continue
            cut: List[Tuple[int, int]] = []
            ok = True
            for pin in self.mapped.fanins(g):
                u = self.subject_id(self.mapped.name_of(pin.src))
                if u is None:
                    ok = False
                    break
                cut.append((u, pin.weight))
            if ok:
                yield g, v, cut


@dataclass
class RetimingContext:
    """Context of the ``"retiming"`` scope: a circuit and a lag vector."""

    circuit: SeqCircuit
    r: Sequence[int]
    file: Optional[str] = None

    def loc(self, nid: Optional[int] = None) -> Location:
        node = None if nid is None else self.circuit.name_of(nid)
        return Location(self.circuit.name, node, self.file)


@rule(
    "MAP001",
    "retiming-legality",
    Severity.ERROR,
    "retiming",
    "A legal retiming keeps every retimed edge weight "
    "w_r(e) = w(e) + r(v) - r(u) non-negative (Leiserson-Saxe).",
)
def check_retiming_legality(ctx: RetimingContext) -> Iterator[Diagnostic]:
    if len(ctx.r) != len(ctx.circuit):
        yield Diagnostic(
            "MAP001",
            Severity.ERROR,
            f"retiming vector has {len(ctx.r)} entries for "
            f"{len(ctx.circuit)} nodes",
            ctx.loc(),
        )
        return
    for src, dst, weight in ctx.circuit.edges():
        retimed = weight + ctx.r[dst] - ctx.r[src]
        if retimed < 0:
            yield Diagnostic(
                "MAP001",
                Severity.ERROR,
                f"edge {ctx.circuit.name_of(src)!r} -> "
                f"{ctx.circuit.name_of(dst)!r}: retimed weight "
                f"{weight} + {ctx.r[dst]} - {ctx.r[src]} = {retimed} < 0",
                ctx.loc(dst),
                data={"weight": weight, "retimed": retimed},
            )


@rule(
    "MAP002",
    "lut-k-feasible",
    Severity.ERROR,
    "mapping",
    "Every emitted LUT must be K-feasible: its cut (fanin pins) has at "
    "most K nodes.",
)
def check_lut_k_feasible(ctx: MappingContext) -> Iterator[Diagnostic]:
    for g in ctx.mapped.gates:
        width = len(ctx.mapped.fanins(g))
        if width > ctx.k:
            yield Diagnostic(
                "MAP002",
                Severity.ERROR,
                f"LUT has a {width}-node cut > K={ctx.k}",
                ctx.loc(g),
                data={"cut_size": width, "k": ctx.k},
            )


@rule(
    "MAP003",
    "label-height",
    Severity.ERROR,
    "mapping",
    "The cut realizing gate v must have height "
    "max(l(u) - phi*w + 1) <= l(v) under the converged labels.",
)
def check_label_height(ctx: MappingContext) -> Iterator[Diagnostic]:
    if not ctx.labels:
        return
    if len(ctx.labels) != len(ctx.subject):
        return  # MAP006 reports the shape mismatch
    for g, v, cut in ctx.plain_luts():
        if not cut:
            continue
        height = max(ctx.labels[u] - ctx.phi * w + 1 for u, w in cut)
        if height > ctx.labels[v]:
            yield Diagnostic(
                "MAP003",
                Severity.ERROR,
                f"cut height {height} exceeds label l(v)={ctx.labels[v]} "
                f"at phi={ctx.phi}",
                ctx.loc(g),
                data={"height": height, "label": ctx.labels[v], "phi": ctx.phi},
            )


@rule(
    "MAP004",
    "phi-mdr-bound",
    Severity.ERROR,
    "mapping",
    "The achieved period must respect the MDR-ratio lower bound of the "
    "mapped network: no cycle may have d(C) > phi * w(C).",
)
def check_phi_mdr_bound(ctx: MappingContext) -> Iterator[Diagnostic]:
    if not ctx.mapped.n_gates:
        return
    if not has_positive_cycle(ctx.mapped, Fraction(ctx.phi, 1)):
        return
    try:
        actual = str(min_feasible_period(ctx.mapped))
    except ValueError:
        actual = "unbounded (combinational cycle)"
    yield Diagnostic(
        "MAP004",
        Severity.ERROR,
        f"claimed period phi={ctx.phi} is below the mapped network's "
        f"MDR bound {actual}: some loop has d(C) > phi*w(C)",
        ctx.loc(),
        data={"phi": ctx.phi, "mdr_bound": actual},
    )


@rule(
    "MAP005",
    "cone-function",
    Severity.ERROR,
    "mapping",
    "Each plain LUT's truth table must equal the exact sequential cone "
    "function between its cut copies u^w and its root in the subject "
    "circuit (every path from u^w to the root crosses exactly w "
    "registers).",
)
def check_cone_function(ctx: MappingContext) -> Iterator[Diagnostic]:
    for g, v, cut in ctx.plain_luts():
        if len(cut) > MAX_CONE_CUT:
            continue  # too wide for dense re-evaluation; MAP002 covers size
        try:
            expected = sequential_cone_function(ctx.subject, v, cut)
        except ValueError as exc:
            # With exact resynthesis provenance this is a hard wiring
            # fault.  Without it, a non-covering cut is exactly what a
            # single-LUT resynthesis tree looks like, so only note it.
            exact = ctx.resyn_roots is not None
            yield Diagnostic(
                "MAP005",
                Severity.ERROR if exact else Severity.INFO,
                f"cut does not cover the expanded circuit of the subject "
                f"gate ({exc})"
                + ("" if exact else "; skipped: possible resynthesized LUT"),
                ctx.loc(g),
            )
            continue
        if expected != ctx.mapped.func(g):
            yield Diagnostic(
                "MAP005",
                Severity.ERROR,
                "LUT function differs from the sequential cone function "
                "of its cut in the subject circuit",
                ctx.loc(g),
            )


@rule(
    "MAP006",
    "label-domain",
    Severity.ERROR,
    "mapping",
    "Converged labels have one entry per subject node, 0 on PIs and at "
    "least 1 on gates.",
)
def check_label_domain(ctx: MappingContext) -> Iterator[Diagnostic]:
    if not ctx.labels:
        return
    if len(ctx.labels) != len(ctx.subject):
        yield Diagnostic(
            "MAP006",
            Severity.ERROR,
            f"label vector has {len(ctx.labels)} entries for "
            f"{len(ctx.subject)} subject nodes",
            Location(ctx.subject.name, None, ctx.file),
        )
        return
    for pi in ctx.subject.pis:
        if ctx.labels[pi] != 0:
            yield Diagnostic(
                "MAP006",
                Severity.ERROR,
                f"primary input label is {ctx.labels[pi]}, not 0",
                Location(ctx.subject.name, ctx.subject.name_of(pi), ctx.file),
            )
    for g in ctx.subject.gates:
        if ctx.labels[g] < 1:
            yield Diagnostic(
                "MAP006",
                Severity.ERROR,
                f"gate label is {ctx.labels[g]}, below the minimum of 1",
                Location(ctx.subject.name, ctx.subject.name_of(g), ctx.file),
            )


@rule(
    "MAP007",
    "csr-patch-roundtrip",
    Severity.ERROR,
    "mapping",
    "An incrementally patched compiled CSR must serialize byte-"
    "identically to a fresh compile of the subject circuit.",
)
def check_csr_patch_roundtrip(ctx: MappingContext) -> Iterator[Diagnostic]:
    if ctx.compiled is None:
        return
    fresh = compile_circuit(ctx.subject)
    if ctx.compiled.to_bytes() != fresh.to_bytes():
        # Localize the first divergence for the report.
        detail = "serialized payloads differ"
        for u in range(min(ctx.compiled.n, fresh.n)):
            if (
                ctx.compiled.kinds[u] != fresh.kinds[u]
                or ctx.compiled.pins(u) != fresh.pins(u)
            ):
                detail = (
                    f"first divergence at node {ctx.subject.name_of(u)!r}: "
                    f"patched pins {ctx.compiled.pins(u)} vs fresh "
                    f"{fresh.pins(u)}"
                )
                break
        yield Diagnostic(
            "MAP007",
            Severity.ERROR,
            f"patched CSR does not round-trip to_bytes against a fresh "
            f"compile ({detail})",
            Location(ctx.subject.name, None, ctx.file),
        )


@rule(
    "MAP008",
    "csr-shape",
    Severity.ERROR,
    "mapping",
    "A patched compiled CSR's arrays must stay structurally sound: "
    "counts, monotone offsets, kind codes and pack shift all match the "
    "subject circuit.",
)
def check_csr_shape(ctx: MappingContext) -> Iterator[Diagnostic]:
    cc = ctx.compiled
    if cc is None:
        return
    loc = Location(ctx.subject.name, None, ctx.file)
    n = len(ctx.subject)
    if cc.n != n or len(cc.kinds) != n or len(cc.offsets) != n + 1:
        yield Diagnostic(
            "MAP008",
            Severity.ERROR,
            f"patched CSR counts disagree with the subject: n={cc.n} "
            f"kinds={len(cc.kinds)} offsets={len(cc.offsets)} for "
            f"{n} nodes",
            loc,
        )
        return
    if cc.shift != pack_shift(n) or cc.mask != (1 << cc.shift) - 1:
        yield Diagnostic(
            "MAP008",
            Severity.ERROR,
            f"packed-copy parameters drifted: shift={cc.shift} "
            f"mask={cc.mask:#x} for n={n}",
            loc,
        )
    if cc.offsets[0] != 0 or any(
        cc.offsets[u] > cc.offsets[u + 1] for u in range(n)
    ):
        yield Diagnostic(
            "MAP008", Severity.ERROR, "offsets are not monotone from 0", loc
        )
        return
    if cc.offsets[n] != len(cc.srcs) or len(cc.srcs) != len(cc.weights):
        yield Diagnostic(
            "MAP008",
            Severity.ERROR,
            f"pin arrays disagree: offsets end at {cc.offsets[n]}, "
            f"srcs={len(cc.srcs)} weights={len(cc.weights)}",
            loc,
        )
        return
    for u in range(n):
        if cc.kinds[u] != kind_code(ctx.subject.kind(u)):
            yield Diagnostic(
                "MAP008",
                Severity.ERROR,
                f"kind code {cc.kinds[u]} disagrees with subject node "
                f"{ctx.subject.name_of(u)!r}",
                loc,
            )
            return


class VerificationError(RuntimeError):
    """A produced mapping violates a certified invariant."""

    def __init__(self, message: str, diagnostics: List[Diagnostic]) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


def verify_mapping(
    subject: SeqCircuit,
    mapped: SeqCircuit,
    phi: int,
    labels: Sequence[int],
    k: int,
    algorithm: str = "",
    resyn_roots: Optional[AbstractSet[str]] = None,
    compiled: Optional[CompiledCircuit] = None,
    schedule_cert: Optional[Dict[str, object]] = None,
    cycle_cert: Optional[Dict[str, object]] = None,
) -> List[Diagnostic]:
    """Certify one mapping result: invariant pack + structural pass.

    ``resyn_roots`` names the subject gates realized by resynthesis
    trees (exact provenance from the driver); when omitted the verifier
    infers trees from the naming convention and softens cone-coverage
    failures to INFO.  ``compiled`` is the delta-patched CSR an
    incremental run probed on; passing it arms the round-trip rules
    (MAP007/MAP008).  ``schedule_cert`` / ``cycle_cert`` are pre-built
    certificate blobs (:mod:`repro.analysis.certify`) for RET002/RET003
    to re-check instead of rebuilding.  Returns every diagnostic found;
    an empty list (or one free of ``ERROR`` findings) certifies the
    result.
    """
    ctx = MappingContext(
        subject,
        mapped,
        phi,
        labels,
        k,
        algorithm,
        resyn_roots=resyn_roots,
        compiled=compiled,
        schedule_cert=schedule_cert,
        cycle_cert=cycle_cert,
    )
    diags = run_rules("mapping", ctx)
    diags += lint_circuit(CircuitContext(mapped, k))
    return sort_diagnostics(diags)


def lint_retiming(
    circuit: SeqCircuit, r: Sequence[int], file: Optional[str] = None
) -> List[Diagnostic]:
    """Check a retiming vector for Leiserson-Saxe legality."""
    return run_rules("retiming", RetimingContext(circuit, r, file))


def verified_rule_ids() -> List[str]:
    """Rule ids :func:`verify_mapping` runs (for the certificate)."""
    return [r.id for r in all_rules("mapping")] + [
        r.id for r in all_rules("circuit")
    ]


def certificate(
    diags: Sequence[Diagnostic],
    phi: int,
    algorithm: str = "",
    t_verify: float = 0.0,
    schedule_certificate: Optional[Dict[str, object]] = None,
    cycle_certificate: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Machine-readable verification summary for a ``SeqMapResult``.

    ``schedule_certificate`` / ``cycle_certificate`` embed the
    independent proof blobs (:mod:`repro.analysis.certify`) the driver
    built for RET002/RET003, so a result carries not just the verdict
    but the replayable evidence.
    """
    errors = [d for d in diags if d.severity is Severity.ERROR]
    warnings = [d for d in diags if d.severity is Severity.WARNING]
    out: Dict[str, object] = {
        "schema": 1,
        "verified": not has_errors(diags),
        "algorithm": algorithm,
        "phi": phi,
        "rules": sorted(verified_rule_ids()),
        "errors": len(errors),
        "warnings": len(warnings),
        "findings": [d.as_dict() for d in diags],
        "t_verify": round(t_verify, 6),
    }
    if schedule_certificate is not None:
        out["schedule_certificate"] = schedule_certificate
    if cycle_certificate is not None:
        out["cycle_certificate"] = cycle_certificate
    return out


def raise_on_errors(
    diags: Sequence[Diagnostic], subject_name: str, algorithm: str = ""
) -> None:
    """Fail fast: raise :class:`VerificationError` on any ERROR finding."""
    errors = [d for d in diags if d.severity is Severity.ERROR]
    if not errors:
        return
    first = errors[0]
    raise VerificationError(
        f"{subject_name}: {algorithm or 'mapping'} result failed "
        f"verification with {len(errors)} error(s); first: "
        f"[{first.rule_id}] {first.location.qualified}: {first.message}",
        list(diags),
    )
