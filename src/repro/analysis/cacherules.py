"""Cache rule pack: integrity audit of persistent outcome-cache entries.

The outcome cache (:mod:`repro.cache`) is consulted before probing and
its exact hits short-circuit whole searches, so — like the CSR blobs
audited by KERN001-006 — its entries deserve static-analysis coverage
beyond the store's own load-time checks:

=========  =========================  ========
CACHE001   key-roundtrip              error
CACHE002   packed-label-bounds        error
CACHE003   certificate-phi-coherence  error
=========  =========================  ========

CACHE001 re-derives the content address from the embedded key and
matches it against the entry's file name and checksum — an entry that
answers for a key it does not encode is poison.  CACHE002 bounds the
packed int32 label blobs (alignment, length == node count, no negative
labels).  CACHE003 cross-checks the recorded final against the per-phi
verdicts (the optimum must be cached feasible with ``phi - 1`` cached
infeasible), the attached certificates, and verdict monotonicity in
phi.

Run them with :func:`audit_cache` over a cache directory;
``python -m repro.cache audit`` (also ``turbosyn cache audit``) and the
CI cache-smoke job surface the findings alongside the other packs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.analysis.engine import (
    Diagnostic,
    Location,
    Severity,
    rule,
    run_rules,
    sort_diagnostics,
)
from repro.cache.store import (
    CACHE_SCHEMA,
    CacheKey,
    OutcomeCache,
    decode_labels,
    entry_checksum,
)


@dataclass
class CacheEntryContext:
    """Context of the ``"cache"`` scope: one parsed entry file."""

    path: str
    entry: Dict[str, Any]
    #: parse failure that prevented reading the entry at all
    error: Optional[str] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def loc(self, node: Optional[str] = None) -> Location:
        circuit = str(self.entry.get("key", {}).get("circuit", "?"))[:12]
        return Location(f"cache:{circuit}", node, self.path)


def _iter_entry_paths(root: str) -> List[str]:
    entries_root = os.path.join(root, "entries")
    out: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(entries_root):
        for name in sorted(filenames):
            if name.endswith(".json"):
                out.append(os.path.join(dirpath, name))
    return out


def audit_cache(
    cache_or_root: "OutcomeCache | str",
    select: Optional[List[str]] = None,
) -> List[Diagnostic]:
    """Run the cache pack over every entry of a cache directory.

    Unreadable/unparseable files are reported through CACHE001 (the
    audit inspects what the store would heal, it does not heal
    itself).  Entries of a *different* schema version are skipped the
    same way the store ignores them.
    """
    root = (
        cache_or_root.root
        if isinstance(cache_or_root, OutcomeCache)
        else os.fspath(cache_or_root)
    )
    diags: List[Diagnostic] = []
    for path in _iter_entry_paths(root):
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
            error = None
            if not isinstance(entry, dict):
                entry, error = {}, "entry is not a JSON object"
        except (OSError, ValueError) as exc:
            entry, error = {}, f"unreadable entry: {exc}"
        if error is None and entry.get("schema") != CACHE_SCHEMA:
            continue  # another writer's schema: ignored, like the store
        ctx = CacheEntryContext(path=path, entry=entry, error=error)
        diags.extend(run_rules("cache", ctx, select))
    return sort_diagnostics(diags)


def _entry_key(entry: Dict[str, Any]) -> Optional[CacheKey]:
    key = entry.get("key")
    if not isinstance(key, dict):
        return None
    try:
        return CacheKey(
            circuit_id=str(key["circuit"]),
            n=int(key["n"]),
            k=int(key["k"]),
            resynthesize=bool(key["resynthesize"]),
            cmax=(None if key["cmax"] is None else int(key["cmax"])),
            pld=bool(key["pld"]),
            extra_depth=int(key["extra_depth"]),
            io_constrained=bool(key["io_constrained"]),
            max_copies=int(key["max_copies"]),
        )
    except (KeyError, TypeError, ValueError):
        return None


@rule(
    "CACHE001",
    "key-roundtrip",
    Severity.ERROR,
    "cache",
    "A cache entry must be parseable, carry a well-formed key that "
    "re-derives its own file name (content address round-trip), and "
    "match its embedded whole-entry checksum.",
)
def check_key_roundtrip(ctx: CacheEntryContext) -> Iterator[Diagnostic]:
    if ctx.error is not None:
        yield Diagnostic(
            "CACHE001", Severity.ERROR, ctx.error, ctx.loc()
        )
        return
    key = _entry_key(ctx.entry)
    if key is None:
        yield Diagnostic(
            "CACHE001",
            Severity.ERROR,
            "entry key is missing or malformed",
            ctx.loc(),
        )
        return
    expected_name = f"{key.circuit_id}-{key.config_id}.json"
    actual_name = os.path.basename(ctx.path)
    if actual_name != expected_name:
        yield Diagnostic(
            "CACHE001",
            Severity.ERROR,
            f"key does not round-trip: file {actual_name!r} but the "
            f"embedded key addresses {expected_name!r}",
            ctx.loc(),
            data={"expected": expected_name},
        )
    recorded = ctx.entry.get("checksum")
    computed = entry_checksum(ctx.entry)
    if recorded != computed:
        yield Diagnostic(
            "CACHE001",
            Severity.ERROR,
            f"checksum mismatch: recorded {str(recorded)[:12]}..., "
            f"computed {computed[:12]}...",
            ctx.loc(),
        )


@rule(
    "CACHE002",
    "packed-label-bounds",
    Severity.ERROR,
    "cache",
    "Per-phi label blobs must decode as int32, have exactly one label "
    "per circuit node, and contain no negative labels; phi keys must "
    "be positive integers.",
)
def check_label_bounds(ctx: CacheEntryContext) -> Iterator[Diagnostic]:
    if ctx.error is not None:
        return
    key = _entry_key(ctx.entry)
    phis = ctx.entry.get("phis")
    if key is None or not isinstance(phis, dict):
        if not isinstance(phis, dict):
            yield Diagnostic(
                "CACHE002",
                Severity.ERROR,
                "entry has no phis table",
                ctx.loc(),
            )
        return
    for phi_text in sorted(phis):
        record = phis[phi_text]
        node = f"phi={phi_text}"
        try:
            phi = int(phi_text)
        except ValueError:
            yield Diagnostic(
                "CACHE002",
                Severity.ERROR,
                f"non-integer phi key {phi_text!r}",
                ctx.loc(node),
            )
            continue
        if phi < 1:
            yield Diagnostic(
                "CACHE002",
                Severity.ERROR,
                f"phi {phi} out of range (must be >= 1)",
                ctx.loc(node),
            )
        try:
            labels = decode_labels(record["labels"])
        except Exception as exc:
            yield Diagnostic(
                "CACHE002",
                Severity.ERROR,
                f"labels do not decode as packed int32: {exc}",
                ctx.loc(node),
            )
            continue
        if len(labels) != key.n:
            yield Diagnostic(
                "CACHE002",
                Severity.ERROR,
                f"{len(labels)} labels for a circuit of n={key.n} nodes",
                ctx.loc(node),
                data={"got": len(labels), "want": key.n},
            )
        negative = sum(1 for v in labels if v < 0)
        if negative:
            yield Diagnostic(
                "CACHE002",
                Severity.ERROR,
                f"{negative} negative labels (labels are cut heights, "
                "always >= 0)",
                ctx.loc(node),
            )


@rule(
    "CACHE003",
    "certificate-phi-coherence",
    Severity.ERROR,
    "cache",
    "The recorded final must be witnessed by the per-phi verdicts "
    "(feasible at phi, infeasible at phi-1), its attached certificates "
    "must agree on phi, and verdicts must be monotone in phi.",
)
def check_final_coherence(ctx: CacheEntryContext) -> Iterator[Diagnostic]:
    if ctx.error is not None:
        return
    phis = ctx.entry.get("phis")
    if not isinstance(phis, dict):
        return
    verdicts: Dict[int, bool] = {}
    for phi_text, record in phis.items():
        try:
            verdicts[int(phi_text)] = bool(record["feasible"])
        except (ValueError, TypeError, KeyError):
            continue  # CACHE002's finding
    feasible = [p for p, ok in verdicts.items() if ok]
    infeasible = [p for p, ok in verdicts.items() if not ok]
    if feasible and infeasible and max(infeasible) > min(feasible):
        yield Diagnostic(
            "CACHE003",
            Severity.ERROR,
            f"verdicts are not monotone in phi: infeasible at "
            f"{max(infeasible)} but feasible at {min(feasible)}",
            ctx.loc("monotonicity"),
        )
    final = ctx.entry.get("final")
    if final is None:
        return
    try:
        phi = int(final["phi"])
        str(final["signature"])
    except (TypeError, ValueError, KeyError):
        yield Diagnostic(
            "CACHE003",
            Severity.ERROR,
            "final record lacks a valid phi/signature",
            ctx.loc("final"),
        )
        return
    if verdicts.get(phi) is not True:
        yield Diagnostic(
            "CACHE003",
            Severity.ERROR,
            f"final phi={phi} has no cached feasible verdict at phi",
            ctx.loc("final"),
        )
    if phi > 1 and verdicts.get(phi - 1) is not False:
        yield Diagnostic(
            "CACHE003",
            Severity.ERROR,
            f"final phi={phi} has no cached infeasible verdict at "
            f"phi-1={phi - 1} (minimality unwitnessed)",
            ctx.loc("final"),
        )
    for cert_name in ("schedule_certificate", "cycle_certificate"):
        cert = final.get(cert_name)
        if cert is None:
            continue
        cert_phi = cert.get("phi") if isinstance(cert, dict) else None
        if cert_phi != phi:
            yield Diagnostic(
                "CACHE003",
                Severity.ERROR,
                f"{cert_name} is for phi={cert_phi!r}, final says "
                f"phi={phi}",
                ctx.loc("final"),
            )
        elif isinstance(cert, dict) and cert.get("feasible") is False:
            yield Diagnostic(
                "CACHE003",
                Severity.ERROR,
                f"{cert_name} declares phi={phi} infeasible but it is "
                "recorded as the optimum",
                ctx.loc("final"),
            )
