"""Independent schedule and cycle-mean certificates (RET002 / RET003).

Second-opinion verification of the Tier-1 claim ``phi >= MDR``: the
mapper's own bound comes from the vectorized Bellman-Ford search in
:mod:`repro.retime.mdr`, so this module re-derives it twice by means
that share no code with that engine.

**Schedule certificate (RET002).**  The retiming graph is a marked
graph (Millo & de Simone, arXiv 1202.4912): edges carry ``w`` tokens
(registers), node ``v`` takes ``d(v)`` time units per firing.  A
*strictly periodic* schedule at period ``phi`` fires ``v`` at times
``s(v) + k*phi``; its activation trace is the balanced binary word
``0^{s(v)} (1 0^{phi-1})^w`` — one firing per period after an initial
delay of ``s(v)`` slots.  Such a schedule exists iff
``phi * w(C) >= d(C)`` on every cycle ``C``, i.e. iff ``phi >= MDR``,
so a valid offset vector is an *executable certificate* of the bound.
:func:`build_schedule_certificate` constructs the offsets by per-SCC
longest-path relaxation; :func:`replay_schedule` then re-checks them
two independent ways — the per-edge start constraint, and an
operational token-game replay of the marked graph over a warm-up
prefix plus one full period with a periodicity check at the end.

**Karp cycle-mean certificate (RET003).**  The MDR ratio
``max_C d(C)/w(C)`` is recomputed exactly as a *maximum cycle mean* on
the condensed register graph: every register instance becomes a node,
chained registers are linked by zero-cost unit edges, and the last
register of an edge connects to the first register of each successor
edge with the maximum gate delay accumulated along zero-weight
combinational paths in between.  A cycle of the condensed graph
traverses exactly ``w(C)`` edges at total cost ``d(C)``, so its mean
equals the cycle's delay-to-register ratio and Karp's theorem
(``mu* = max_v min_k (D_n(v) - D_k(v)) / (n - k)``) yields the exact
MDR.  The blob carries an explicit critical cycle mapped back to
circuit nodes, which the rule re-walks against the original circuit —
the reported ratio is both *achieved* (witness cycle) and *respected*
(``phi >= mu*``), and finally cross-checked against the engine's own
:func:`repro.retime.mdr.min_feasible_period`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.engine import Diagnostic, Severity, rule
from repro.analysis.invariants import MappingContext
from repro.netlist.graph import SeqCircuit

#: Certificate blob schema version (both certificate kinds).
CERT_SCHEMA = 1

#: Replay budget: past this many simulated firing events the token-game
#: replay is skipped (the O(E) constraint check still certifies).
DEFAULT_MAX_EVENTS = 250_000

#: Karp budget: past this many condensed nodes/edges the cycle-mean
#: cross-check is skipped with an explicit reason (O(N*M) table).
DEFAULT_MAX_REGISTERS = 2_000
DEFAULT_MAX_CONDENSED_EDGES = 20_000

_NEG_INF = float("-inf")


def _delays(circuit: SeqCircuit) -> List[int]:
    """Per-node delays under the circuit's delay model."""
    return [circuit.node(v).delay for v in circuit.node_ids()]


def _dedup_edges(circuit: SeqCircuit) -> List[Tuple[int, int, int]]:
    """Deduplicated ``(src, dst, weight)`` edges (parallel pins merged)."""
    seen = set()
    out: List[Tuple[int, int, int]] = []
    for edge in circuit.edges():
        if edge not in seen:
            seen.add(edge)
            out.append(edge)
    return out


# ----------------------------------------------------------------------
# Schedule certificates
# ----------------------------------------------------------------------
def balanced_word(offset: int, phi: int, length: int) -> str:
    """Prefix of the balanced binary activation word ``0^s (1 0^{phi-1})^w``.

    Position ``t`` is ``1`` exactly when the node fires at time ``t``
    under the strictly periodic schedule ``s + k*phi``.
    """
    return "".join(
        "1" if t >= offset and (t - offset) % phi == 0 else "0"
        for t in range(length)
    )


def build_schedule_certificate(
    circuit: SeqCircuit, phi: int
) -> Dict[str, Any]:
    """Construct the periodic-schedule certificate blob for ``phi``.

    Solves the difference constraints ``s(v) >= s(u) + d(u) - phi*w``
    by longest-path relaxation, SCC by SCC in topological order of the
    condensation (cross edges settle in one pass; an SCC of ``m`` nodes
    converges within ``m`` sweeps or proves a cycle with
    ``d(C) > phi * w(C)``, i.e. ``phi < MDR``).
    """
    n = len(circuit)
    delays = _delays(circuit)
    offsets = [0] * n
    fanin_edges: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for src, dst, weight in _dedup_edges(circuit):
        fanin_edges[dst].append((src, delays[src] - phi * weight))
    for members in circuit.sccs():
        member_set = set(members)
        # Cross edges first: predecessors outside the SCC are final.
        for v in members:
            for src, gain in fanin_edges[v]:
                if src not in member_set:
                    cand = offsets[src] + gain
                    if cand > offsets[v]:
                        offsets[v] = cand
        internal = [
            (v, src, gain)
            for v in members
            for src, gain in fanin_edges[v]
            if src in member_set
        ]
        if not internal:
            continue
        witness: Optional[int] = None
        for sweep in range(len(members) + 1):
            changed = False
            for v, src, gain in internal:
                cand = offsets[src] + gain
                if cand > offsets[v]:
                    offsets[v] = cand
                    changed = True
                    witness = v
            if not changed:
                break
        else:
            # Still relaxing after |S| sweeps: a positive cycle through
            # ``witness`` proves the period infeasible.
            return {
                "schema": CERT_SCHEMA,
                "kind": "periodic-schedule",
                "phi": phi,
                "feasible": False,
                "witness_node": circuit.name_of(witness)
                if witness is not None
                else None,
            }
    base = min(offsets) if offsets else 0
    offsets = [s - base for s in offsets]
    return {
        "schema": CERT_SCHEMA,
        "kind": "periodic-schedule",
        "phi": phi,
        "feasible": True,
        "offsets": offsets,
        "hyperperiod": phi,
        "makespan": max(offsets) if offsets else 0,
        "word": {"ones_per_period": 1, "period": phi},
    }


def replay_schedule(
    circuit: SeqCircuit,
    phi: int,
    offsets: Sequence[int],
    max_events: int = DEFAULT_MAX_EVENTS,
) -> List[str]:
    """Re-check a schedule certificate; returns violation messages.

    Two independent passes:

    1. every edge ``u -> v`` with ``w`` registers must satisfy the
       start constraint ``s(v) >= s(u) + d(u) - phi*w``;
    2. an operational token-game replay: edges start with ``w`` tokens,
       the ``k``-th firing of ``v`` (time ``s(v)+k*phi``) consumes one
       token per fanin edge, completions at ``s(u)+k*phi+d(u)`` produce
       one token per fanout edge.  The marking must never go negative
       and must return to itself one period after warm-up (periodicity
       implies the schedule runs forever at throughput ``1/phi``).

    The replay is skipped (never a violation) past ``max_events``; the
    constraint pass alone is already a complete proof.
    """
    problems: List[str] = []
    if phi < 1:
        return [f"period {phi} is not a positive integer"]
    n = len(circuit)
    if len(offsets) != n:
        return [f"offset vector has {len(offsets)} entries for {n} nodes"]
    delays = _delays(circuit)
    edges = _dedup_edges(circuit)
    for src, dst, weight in edges:
        slack = offsets[dst] - offsets[src] - delays[src] + phi * weight
        if slack < 0:
            problems.append(
                f"edge {circuit.name_of(src)!r}->{circuit.name_of(dst)!r}"
                f" (w={weight}) violates the start constraint by {-slack}"
            )
    if problems:
        return problems

    makespan = max(offsets) if offsets else 0
    horizon = makespan + 2 * phi
    n_events = sum((horizon - s) // phi + 1 for s in offsets) * 2
    if n_events > max_events:
        return problems  # replay skipped; constraint pass certified

    fires: List[List[int]] = [[] for _ in range(horizon + 1)]
    completes: List[List[int]] = [[] for _ in range(horizon + 2)]
    for v in range(n):
        for t in range(offsets[v], horizon + 1, phi):
            fires[t].append(v)
            completes[t + delays[v]].append(v)
    fanout_edges: List[List[int]] = [[] for _ in range(n)]
    fanin_edge_ids: List[List[int]] = [[] for _ in range(n)]
    tokens: List[int] = []
    for idx, (src, dst, weight) in enumerate(edges):
        fanout_edges[src].append(idx)
        fanin_edge_ids[dst].append(idx)
        tokens.append(weight)
    snapshot: Optional[List[int]] = None
    for t in range(horizon + 1):
        for u in completes[t]:
            for idx in fanout_edges[u]:
                tokens[idx] += 1
        for v in fires[t]:
            for idx in fanin_edge_ids[v]:
                tokens[idx] -= 1
                if tokens[idx] < 0:
                    src, dst, weight = edges[idx]
                    problems.append(
                        f"replay: edge {circuit.name_of(src)!r}->"
                        f"{circuit.name_of(dst)!r} runs out of tokens at"
                        f" t={t}"
                    )
                    return problems
        if t == makespan + phi:
            snapshot = list(tokens)
        elif t == makespan + 2 * phi and snapshot is not None:
            if tokens != snapshot:
                problems.append(
                    "replay: marking is not periodic one period after"
                    " warm-up"
                )
    return problems


# ----------------------------------------------------------------------
# Karp cycle-mean certificates
# ----------------------------------------------------------------------
@dataclass
class _CondensedGraph:
    """The condensed register graph and its back-mapping to the circuit.

    ``edges`` entries are ``(src_reg, dst_reg, cost, path)`` where
    ``path`` is the circuit node-id path (head node of the source
    register's bank through the last combinational node) the cost was
    accumulated over, or ``None`` for the zero-cost links inside a
    register chain.  ``reg_edge[r]`` indexes ``weighted`` (the original
    weighted circuit edges) for register ``r``'s bank.
    """

    labels: List[str]
    edges: List[Tuple[int, int, int, Optional[List[int]]]]
    n_regs: int
    weighted: List[Tuple[int, int, int]]
    reg_edge: List[int]


def _condensed_register_graph(circuit: SeqCircuit) -> _CondensedGraph:
    """Build the condensed register graph of a circuit.

    Raises ``ValueError`` on a combinational cycle (MDR unbounded).
    """
    delays = _delays(circuit)
    weighted = [e for e in _dedup_edges(circuit) if e[2] >= 1]
    reg_base: List[int] = []
    labels: List[str] = []
    reg_edge: List[int] = []
    n_regs = 0
    first_reg: List[List[int]] = [[] for _ in range(len(circuit))]
    for idx, (src, dst, weight) in enumerate(weighted):
        reg_base.append(n_regs)
        tag = f"{circuit.name_of(src)}->{circuit.name_of(dst)}"
        labels.extend(f"{tag}#{i}" for i in range(weight))
        reg_edge.extend([idx] * weight)
        first_reg[src].append(n_regs)
        n_regs += weight
    edges: List[Tuple[int, int, int, Optional[List[int]]]] = []
    for idx, (_src, _dst, weight) in enumerate(weighted):
        base = reg_base[idx]
        for i in range(weight - 1):
            edges.append((base + i, base + i + 1, 0, None))
    # best[v]: exit register -> (max accumulated delay from v inclusive,
    # next hop on that path, or -1 for a direct weighted out-edge of v).
    best: List[Dict[int, Tuple[int, int]]] = [
        {} for _ in range(len(circuit))
    ]
    order = circuit.comb_topo_order()  # raises on combinational cycles
    for v in reversed(order):
        d_v = delays[v]
        mine = best[v]
        for reg in first_reg[v]:
            mine[reg] = (d_v, -1)
        for dst, weight in circuit.fanouts(v):
            if weight == 0:
                for reg, (cost, _hop) in best[dst].items():
                    cand = d_v + cost
                    if reg not in mine or cand > mine[reg][0]:
                        mine[reg] = (cand, dst)
    for idx, (_src, dst, weight) in enumerate(weighted):
        tail = reg_base[idx] + weight - 1
        for reg, (cost, _hop) in best[dst].items():
            path = [dst]
            hop = best[dst][reg][1]
            node = dst
            while hop != -1:
                path.append(hop)
                node = hop
                hop = best[node][reg][1]
            edges.append((tail, reg, cost, path))
    return _CondensedGraph(labels, edges, n_regs, weighted, reg_edge)


def _karp_max_cycle_mean(
    n_regs: int, edges: Sequence[Tuple[int, int, int, Optional[List[int]]]]
) -> Optional[Tuple[Fraction, List[int]]]:
    """Karp's maximum cycle mean; ``(mu*, critical cycle)`` or ``None``.

    Runs on the condensed graph plus a super-source with zero-cost
    edges to every register, so every cycle is reachable.  ``None``
    when the graph is acyclic.
    """
    n = n_regs + 1  # + super-source (vertex n_regs)
    source = n_regs
    adj: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for src, dst, cost, _path in edges:
        adj[src].append((dst, cost))
    for v in range(n_regs):
        adj[source].append((v, 0))
    dist: List[List[float]] = [[_NEG_INF] * n for _ in range(n + 1)]
    parent: List[List[int]] = [[-1] * n for _ in range(n + 1)]
    dist[0][source] = 0.0
    for k in range(1, n + 1):
        row = dist[k]
        par = parent[k]
        prev = dist[k - 1]
        for u in range(n):
            du = prev[u]
            if du == _NEG_INF:
                continue
            for v, cost in adj[u]:
                cand = du + cost
                if cand > row[v]:
                    row[v] = cand
                    par[v] = u
    mu: Optional[Fraction] = None
    arg: int = -1
    final = dist[n]
    for v in range(n):
        if final[v] == _NEG_INF:
            continue
        worst: Optional[Fraction] = None
        for k in range(n):
            if dist[k][v] == _NEG_INF:
                continue
            ratio = Fraction(int(final[v] - dist[k][v]), n - k)
            if worst is None or ratio < worst:
                worst = ratio
        if worst is not None and (mu is None or worst > mu):
            mu = worst
            arg = v
    if mu is None:
        return None
    # Walk parents from (n, arg); within n+1 visited vertices one must
    # repeat, and the slice between repeats is a critical cycle.
    walk: List[int] = []
    seen: Dict[int, int] = {}
    v, k = arg, n
    while v not in seen:
        seen[v] = len(walk)
        walk.append(v)
        v, k = parent[k][v], k - 1
    cycle = walk[seen[v] :]
    cycle.reverse()  # parent walk runs backwards in time
    return mu, cycle


def exact_mdr_period(
    circuit: SeqCircuit,
    max_registers: int = DEFAULT_MAX_REGISTERS,
    max_condensed_edges: int = DEFAULT_MAX_CONDENSED_EDGES,
) -> Optional[int]:
    """``max(1, ceil(MDR))`` of a circuit in one exact Karp pass.

    This equals :func:`repro.retime.mdr.min_feasible_period` (the
    smallest integer phi with no cycle ``d(C) > phi * w(C)``) but
    replaces that function's ``O(log n)`` Bellman-Ford feasibility
    probes with a single Karp maximum-cycle-mean computation on the
    condensed register graph — the same exact machinery RET003 uses to
    cross-check achieved mappings, reused here to obtain the Figure-4
    search's default bound up front.

    Returns ``None`` when the condensed graph exceeds the Karp size
    budget (callers fall back to the Bellman-Ford search); raises
    ``ValueError`` on a combinational cycle, matching
    ``min_feasible_period``.
    """
    graph = _condensed_register_graph(circuit)
    if (
        graph.n_regs > max_registers
        or len(graph.edges) > max_condensed_edges
    ):
        return None
    found = _karp_max_cycle_mean(graph.n_regs, graph.edges)
    if found is None:
        return 1
    mu, _cycle = found
    return max(1, math.ceil(mu))


def build_cycle_certificate(
    circuit: SeqCircuit,
    phi: int,
    max_registers: int = DEFAULT_MAX_REGISTERS,
    max_condensed_edges: int = DEFAULT_MAX_CONDENSED_EDGES,
) -> Dict[str, Any]:
    """Construct the Karp cycle-mean certificate blob for ``phi``.

    The blob carries the exact MDR as a fraction, the implied integer
    period bound, and a critical closed walk mapped back to circuit
    nodes (``circuit_cycle``: ``[[name, weight_to_next], ...]``) so a
    checker can re-walk the original circuit without rebuilding the
    condensed graph.  Oversized inputs are skipped with a reason.
    """
    base: Dict[str, Any] = {
        "schema": CERT_SCHEMA,
        "kind": "karp-cycle-mean",
        "phi": phi,
    }
    try:
        graph = _condensed_register_graph(circuit)
    except ValueError:
        base.update(mcm=None, feasible=False, reason="combinational cycle")
        return base
    base.update(
        registers=graph.n_regs, condensed_edges=len(graph.edges)
    )
    if (
        graph.n_regs > max_registers
        or len(graph.edges) > max_condensed_edges
    ):
        base.update(
            mcm=None,
            skipped=(
                f"condensed graph too large ({graph.n_regs} registers,"
                f" {len(graph.edges)} edges)"
            ),
        )
        return base
    found = _karp_max_cycle_mean(graph.n_regs, graph.edges)
    if found is None:
        base.update(mcm=None, bound=1, feasible=True, critical_cycle=[])
        return base
    mu, cycle = found
    bound = max(1, math.ceil(mu))
    edge_paths: Dict[Tuple[int, int], Optional[List[int]]] = {
        (src, dst): path for src, dst, _cost, path in graph.edges
    }
    # Rebuild the critical closed walk on circuit nodes.  Each cost
    # edge of the cycle contributes its combinational path ``v .. x``
    # (zero-weight hops), and consecutive paths are connected by the
    # register bank the target register belongs to (``w`` registers
    # from ``x`` into the next path's first node).
    segments: List[Tuple[List[int], int]] = []  # (path, exit weight)
    for i, reg in enumerate(cycle):
        nxt = cycle[(i + 1) % len(cycle)]
        path = edge_paths.get((reg, nxt))
        if path is None:
            continue  # zero-cost chain link inside one register bank
        # ``nxt`` is the first register of the bank the walk enters
        # after this path: its weight spans path[-1] -> next path[0].
        _src, _dst, weight = graph.weighted[graph.reg_edge[nxt]]
        segments.append((path, weight))
    circuit_cycle: List[List[Any]] = []
    for path, exit_weight in segments:
        for node in path[:-1]:
            circuit_cycle.append([circuit.name_of(node), 0])
        circuit_cycle.append([circuit.name_of(path[-1]), exit_weight])
    base.update(
        mcm=f"{mu.numerator}/{mu.denominator}",
        bound=bound,
        feasible=phi >= mu,
        critical_cycle=[graph.labels[reg] for reg in cycle],
        circuit_cycle=circuit_cycle,
    )
    return base


def check_cycle_certificate(
    circuit: SeqCircuit, phi: int, blob: Dict[str, Any]
) -> List[str]:
    """Re-check a cycle-mean certificate; returns violation messages.

    Re-walks ``circuit_cycle`` on the original circuit (every claimed
    edge must exist with the claimed register count), recomputes the
    walk's delay-to-register ratio, and requires it to equal the
    claimed ``mcm`` with ``phi >= mcm``.
    """
    problems: List[str] = []
    if blob.get("skipped") is not None:
        return problems
    mcm_text = blob.get("mcm")
    if mcm_text is None:
        if blob.get("feasible") is False:
            problems.append(
                "cycle certificate reports an unbounded MDR"
                f" ({blob.get('reason', 'no reason')})"
            )
        return problems
    num, den = (int(part) for part in str(mcm_text).split("/", 1))
    mu = Fraction(num, den)
    walk = blob.get("circuit_cycle") or []
    if not walk:
        problems.append("cycle certificate has no witness cycle")
        return problems
    ids = {circuit.name_of(v): v for v in circuit.node_ids()}
    pin_sets = [
        {(p.src, p.weight) for p in circuit.fanins(v)}
        for v in circuit.node_ids()
    ]
    delays = _delays(circuit)
    total_delay = 0
    total_weight = 0
    for i, (name, weight) in enumerate(walk):
        nxt_name = walk[(i + 1) % len(walk)][0]
        if name not in ids or nxt_name not in ids:
            problems.append(f"witness cycle names unknown node {name!r}")
            return problems
        src, dst = ids[name], ids[nxt_name]
        if (src, int(weight)) not in pin_sets[dst]:
            problems.append(
                f"witness cycle claims edge {name!r}->{nxt_name!r}"
                f" (w={weight}) which the circuit does not have"
            )
            return problems
        total_delay += delays[src]
        total_weight += int(weight)
    if total_weight <= 0:
        problems.append("witness cycle carries no registers")
        return problems
    achieved = Fraction(total_delay, total_weight)
    if achieved != mu:
        problems.append(
            f"witness cycle achieves ratio {achieved}, certificate"
            f" claims {mu}"
        )
    if phi < mu:
        problems.append(
            f"period {phi} is below the certified MDR ratio {mu}"
        )
    return problems


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
@rule(
    "RET002",
    "schedule-certificate",
    Severity.ERROR,
    "mapping",
    "A balanced-binary-word periodic schedule at period phi must exist "
    "and replay cleanly on the mapped circuit's marked graph "
    "(independent proof of phi >= MDR).",
)
def _check_schedule_certificate(ctx: MappingContext) -> Iterator[Diagnostic]:
    blob = ctx.schedule_cert
    if blob is None:
        blob = build_schedule_certificate(ctx.mapped, ctx.phi)
    loc = ctx.loc()
    if not blob.get("feasible"):
        yield Diagnostic(
            "RET002",
            Severity.ERROR,
            "no periodic schedule exists at period "
            f"{ctx.phi} (phi < MDR); infeasibility witnessed at node "
            f"{blob.get('witness_node')!r}",
            loc,
            data={"certificate": blob},
        )
        return
    offsets = blob.get("offsets") or []
    for problem in replay_schedule(ctx.mapped, ctx.phi, offsets):
        yield Diagnostic(
            "RET002",
            Severity.ERROR,
            f"schedule certificate failed replay: {problem}",
            loc,
            data={"phi": ctx.phi},
        )


@rule(
    "RET003",
    "cycle-mean-crosscheck",
    Severity.ERROR,
    "mapping",
    "Karp's maximum cycle mean on the condensed register graph must "
    "re-derive the MDR bound: the witness cycle re-walks, phi >= mcm, "
    "and the independent bound agrees with the engine's.",
)
def _check_cycle_certificate(ctx: MappingContext) -> Iterator[Diagnostic]:
    blob = ctx.cycle_cert
    if blob is None:
        blob = build_cycle_certificate(ctx.mapped, ctx.phi)
    loc = ctx.loc()
    for problem in check_cycle_certificate(ctx.mapped, ctx.phi, blob):
        yield Diagnostic(
            "RET003",
            Severity.ERROR,
            f"cycle-mean certificate rejected: {problem}",
            loc,
            data={"mcm": blob.get("mcm")},
        )
        return
    if blob.get("skipped") is not None or blob.get("feasible") is False:
        return
    bound = blob.get("bound")
    if bound is None:
        return
    from repro.retime.mdr import min_feasible_period

    try:
        engine_bound = min_feasible_period(ctx.mapped, upper_bound=ctx.phi)
    except ValueError as exc:
        yield Diagnostic(
            "RET003",
            Severity.ERROR,
            f"engine cross-check failed: {exc}",
            loc,
        )
        return
    if engine_bound != bound:
        yield Diagnostic(
            "RET003",
            Severity.ERROR,
            "independent Karp bound disagrees with the engine: "
            f"ceil(mcm) = {bound}, min_feasible_period = {engine_bound}",
            loc,
            data={"mcm": blob.get("mcm"), "engine_bound": engine_bound},
        )
