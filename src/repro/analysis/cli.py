"""The circuit linter CLI: ``repro lint`` / ``python -m repro.analysis``.

Lints one or more BLIF circuits with the structural rule pack and
reports diagnostics as text, JSON or SARIF 2.1.0.

Exit codes
----------
0   no finding at or above the ``--fail-on`` severity (default: error)
1   at least one such finding survived baseline suppression
2   usage or input error (unreadable file, malformed BLIF, bad baseline)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Set

from repro.analysis import baseline as baseline_mod
from repro.analysis.engine import (
    CircuitContext,
    Diagnostic,
    Severity,
    all_rules,
    count_by_severity,
    render_text,
    run_rules,
)
from repro.analysis.sarif import render_sarif

FORMATS = ("text", "json", "sarif")
FAIL_ON = ("error", "warning", "info", "never")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the linter's arguments (shared with the turbosyn CLI)."""
    parser.add_argument("circuits", nargs="+", help="BLIF files to lint")
    parser.add_argument("-k", type=int, default=5, help="LUT input count")
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out", metavar="FILE", help="write the report here instead of stdout"
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all circuit rules)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline JSON",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings (pre-suppression) as a baseline",
    )
    parser.add_argument(
        "--fail-on",
        choices=FAIL_ON,
        default="error",
        help="lowest severity that makes the exit code 1 (default: error)",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed arguments."""
    from repro.netlist.blif import BlifError, read_blif_file

    select = (
        [s.strip() for s in args.select.split(",") if s.strip()]
        if args.select
        else None
    )
    known: Set[str] = set()
    if args.baseline:
        try:
            known = baseline_mod.load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    diags: List[Diagnostic] = []
    load_failed = False
    for path in args.circuits:
        try:
            circuit, _info = read_blif_file(path)
        except (OSError, BlifError, ValueError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            load_failed = True
            continue
        diags.extend(
            run_rules(
                "circuit", CircuitContext(circuit, args.k, file=path), select
            )
        )
        # The kernel pack audits the compiled CSR twin of every linted
        # circuit, so a kernel regression surfaces in the same report
        # stream as a malformed netlist.
        from repro.analysis.kernelrules import audit_compiled

        diags.extend(audit_compiled(circuit, file=path, select=select))
    if load_failed:
        return 2

    if args.write_baseline:
        baseline_mod.write_baseline(diags, args.write_baseline)

    kept, n_suppressed = baseline_mod.suppress(diags, known)
    rules_run = all_rules("circuit", select) + all_rules("kernel", select)

    if args.format == "sarif":
        report = render_sarif(kept, rules_run)
    elif args.format == "json":
        from repro.analysis.engine import diagnostics_json

        report = diagnostics_json(kept)
    else:
        counts = count_by_severity(kept)
        lines = [render_text(kept)] if kept else []
        lines.append(
            f"{len(args.circuits)} circuit(s) linted: "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info(s)"
            + (f", {n_suppressed} suppressed by baseline" if n_suppressed else "")
        )
        report = "\n".join(lines) + "\n"

    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
    else:
        sys.stdout.write(report)

    if args.fail_on == "never":
        return 0
    threshold = Severity(args.fail_on).rank
    if any(d.severity.rank <= threshold for d in kept):
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Circuit linter: structural rules over BLIF netlists "
        "with text / JSON / SARIF 2.1.0 reports",
    )
    add_lint_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_lint(args)
