"""Incremental rule pack: audit edit journals and dirty-region repair.

The incremental remapping layer (:mod:`repro.incremental`) trades a
full re-solve for journal-driven delta patching and dirty-region label
repair; its correctness rests on three auditable claims, one rule
each under the ``"incremental"`` scope:

========  ==============================  ========
INC001    journal-compiled-coherence      error
INC002    dirty-closure-soundness         error
INC003    witness-revalidation-complete   error
========  ==============================  ========

* **INC001** — the journal is a faithful last-writer-wins record: the
  final journaled pins of every touched node equal the circuit's
  actual fanins, journaled ids are in range, and the (possibly
  delta-patched) compiled CSR serializes byte-identically to a fresh
  compile of the post-edit circuit.
* **INC002** — the dirty region is sound: it contains every edited
  node and is forward-closed under fanout edges (a clean node can
  never observe a changed label), which also forces SCC homogeneity.
* **INC003** — label reuse is exact and witness revalidation covered
  the dirty region: for every dirty-seeded probe, clean gates keep
  their previous fixpoint labels verbatim, ``labels_reused`` counts
  exactly the clean gates, and ``witnesses_revalidated`` never exceeds
  the dirty gate population (a clean gate's witness must not have been
  re-queried).

:func:`audit_incremental` runs the pack; :func:`remap
<repro.incremental.session.remap>` calls it on every checked repair
and folds the findings into the result certificate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.engine import (
    Diagnostic,
    Location,
    Severity,
    rule,
    run_rules,
    sort_diagnostics,
)
from repro.core.labels import LabelOutcome
from repro.kernel.csr import CompiledCircuit, compile_circuit
from repro.netlist.graph import Edit, SeqCircuit

#: How many offending nodes a single finding names.
_MAX_SHOWN = 5


@dataclass
class IncrementalContext:
    """Context of the ``"incremental"`` scope: one repair's evidence.

    ``circuit`` is the post-edit circuit; ``prev_outcomes`` /
    ``outcomes`` map probed phi to label outcomes of the previous and
    the repaired run (either may be ``None`` when a caller only wants
    the journal/dirty checks).
    """

    circuit: SeqCircuit
    edits: Sequence[Edit]
    dirty: AbstractSet[int]
    prev_outcomes: Optional[Dict[int, LabelOutcome]] = None
    outcomes: Optional[Dict[int, LabelOutcome]] = None
    compiled: Optional[CompiledCircuit] = None
    file: Optional[str] = None

    def loc(self, nid: Optional[int] = None) -> Location:
        node = (
            None
            if nid is None or not 0 <= nid < len(self.circuit)
            else self.circuit.name_of(nid)
        )
        return Location(self.circuit.name, node, self.file)


def audit_incremental(ctx: IncrementalContext) -> List[Diagnostic]:
    """Run the incremental pack over one repair's evidence."""
    return sort_diagnostics(run_rules("incremental", ctx))


def _show(nids: Sequence[int], circuit: SeqCircuit) -> str:
    names = sorted(
        circuit.name_of(v) if 0 <= v < len(circuit) else f"#{v}"
        for v in nids
    )
    shown = ", ".join(names[:_MAX_SHOWN])
    if len(names) > _MAX_SHOWN:
        shown += f", ... ({len(names)} nodes)"
    return shown


@rule(
    "INC001",
    "journal-compiled-coherence",
    Severity.ERROR,
    "incremental",
    "The edit journal must be a faithful last-writer-wins record of "
    "the circuit's current fanins, and a patched compiled CSR must be "
    "byte-identical to a fresh compile of the post-edit circuit.",
)
def check_journal(ctx: IncrementalContext) -> Iterator[Diagnostic]:
    circuit = ctx.circuit
    n = len(circuit)
    last: Dict[int, Edit] = {}
    out_of_range = []
    for edit in ctx.edits:
        if not 0 <= edit.nid < n:
            out_of_range.append(edit.nid)
            continue
        last[edit.nid] = edit
    if out_of_range:
        yield Diagnostic(
            "INC001",
            Severity.ERROR,
            f"journal references node ids outside the circuit: "
            f"{sorted(set(out_of_range))[:_MAX_SHOWN]}",
            ctx.loc(),
        )
    for nid in sorted(last):
        edit = last[nid]
        actual: List[Tuple[int, int]] = [
            (p.src, p.weight) for p in circuit.fanins(nid)
        ]
        if list(edit.pins) != actual:
            yield Diagnostic(
                "INC001",
                Severity.ERROR,
                f"journal records pins {list(edit.pins)} for node "
                f"{circuit.name_of(nid)!r} but the circuit has "
                f"{actual}",
                ctx.loc(nid),
            )
    if ctx.compiled is not None:
        if ctx.compiled.to_bytes() != compile_circuit(circuit).to_bytes():
            yield Diagnostic(
                "INC001",
                Severity.ERROR,
                "the adopted compiled CSR is not byte-identical to a "
                "fresh compile of the post-edit circuit",
                ctx.loc(),
            )


@rule(
    "INC002",
    "dirty-closure-soundness",
    Severity.ERROR,
    "incremental",
    "The dirty region must contain every edited node and be forward-"
    "closed under fanouts; otherwise a 'clean' label could silently "
    "depend on a changed one.",
)
def check_dirty_closure(ctx: IncrementalContext) -> Iterator[Diagnostic]:
    circuit = ctx.circuit
    n = len(circuit)
    dirty = ctx.dirty
    missing_seeds = sorted(
        {e.nid for e in ctx.edits if 0 <= e.nid < n and e.nid not in dirty}
    )
    if missing_seeds:
        yield Diagnostic(
            "INC002",
            Severity.ERROR,
            "edited node(s) missing from the dirty region: "
            f"{_show(missing_seeds, circuit)}",
            ctx.loc(missing_seeds[0]),
            data={"missing": missing_seeds},
        )
    leaks = sorted(
        {
            dst
            for u in dirty
            if 0 <= u < n
            for dst, _w in circuit.fanouts(u)
            if dst not in dirty
        }
    )
    if leaks:
        yield Diagnostic(
            "INC002",
            Severity.ERROR,
            "dirty region is not forward-closed; clean node(s) read "
            f"dirty drivers: {_show(leaks, circuit)}",
            ctx.loc(leaks[0]),
            data={"leaks": leaks},
        )


@rule(
    "INC003",
    "witness-revalidation-complete",
    Severity.ERROR,
    "incremental",
    "Dirty-seeded probes must adopt clean labels verbatim "
    "(labels_reused = clean gates, values bit-equal to the previous "
    "fixpoint) and only revalidate witnesses inside the dirty region.",
)
def check_witness_reuse(ctx: IncrementalContext) -> Iterator[Diagnostic]:
    if ctx.prev_outcomes is None or ctx.outcomes is None:
        return
    circuit = ctx.circuit
    n = len(circuit)
    dirty = ctx.dirty
    clean_gates = [g for g in circuit.gates if g not in dirty]
    n_dirty_gates = sum(
        1 for g in circuit.gates if g in dirty
    )
    for phi in sorted(ctx.outcomes):
        outcome = ctx.outcomes[phi]
        stats = outcome.stats
        if stats.dirty_nodes == 0:
            continue  # cold or warm probe: no dirty seed was used
        prev = ctx.prev_outcomes.get(phi)
        if prev is None or not prev.feasible:
            continue  # the seed cannot have come from this phi
        drift = [
            g
            for g in clean_gates
            if g < len(prev.labels) and outcome.labels[g] != prev.labels[g]
        ]
        if drift:
            yield Diagnostic(
                "INC003",
                Severity.ERROR,
                f"probe at phi={phi} changed {len(drift)} clean "
                f"label(s): {_show(drift, circuit)}",
                ctx.loc(drift[0]),
                data={"phi": phi, "drifted": drift[:_MAX_SHOWN]},
            )
        if stats.labels_reused != len(clean_gates):
            yield Diagnostic(
                "INC003",
                Severity.ERROR,
                f"probe at phi={phi} reports {stats.labels_reused} "
                f"reused labels; the region has {len(clean_gates)} "
                "clean gates",
                ctx.loc(),
                data={"phi": phi},
            )
        if stats.witnesses_revalidated > n_dirty_gates:
            yield Diagnostic(
                "INC003",
                Severity.ERROR,
                f"probe at phi={phi} revalidated "
                f"{stats.witnesses_revalidated} witnesses for only "
                f"{n_dirty_gates} dirty gates — a clean witness was "
                "re-queried",
                ctx.loc(),
                data={"phi": phi},
            )
