"""Static analysis: circuit linter and mapping-invariant verifier.

Public surface
--------------
* :mod:`repro.analysis.engine` — rule registry, :class:`Diagnostic`,
  severities, text/JSON rendering.
* :mod:`repro.analysis.structural` — lint rules over a raw
  :class:`~repro.netlist.graph.SeqCircuit` (CIRC0xx).
* :mod:`repro.analysis.invariants` — post-hoc verification of mapping
  and retiming results (MAP0xx), the ``certificate`` summary attached to
  ``SeqMapResult``, and :class:`VerificationError`.
* :mod:`repro.analysis.certify` — independent schedule / cycle-mean
  certificates (RET002/RET003): a balanced-binary-word periodic
  schedule replayed on the mapped marked graph, and Karp's maximum
  cycle mean on the condensed register graph, both emitted as
  machine-readable blobs on the result certificate.
* :mod:`repro.analysis.kernelrules` — CSR integrity audit of compiled
  circuits (KERN00x), run by ``repro lint`` alongside the structural
  pack.
* :mod:`repro.analysis.increrules` — incremental-repair audit
  (INC00x): journal coherence, dirty-closure soundness, witness
  revalidation.
* :mod:`repro.analysis.sanitize` — opt-in runtime invariant hooks
  (SAN00x, ``REPRO_SANITIZE=1`` / ``--sanitize``) with a seeded
  mutation-testing selftest.
* :mod:`repro.analysis.sarif` — SARIF 2.1.0 reports.
* :mod:`repro.analysis.baseline` — baseline suppression for CI.
* :mod:`repro.analysis.cli` — ``repro lint`` / ``python -m
  repro.analysis``.

Importing this package registers every rule pack.
"""

from repro.analysis.certify import (
    build_cycle_certificate,
    build_schedule_certificate,
    check_cycle_certificate,
    replay_schedule,
)
from repro.analysis.engine import (
    CircuitContext,
    Diagnostic,
    Location,
    Rule,
    Severity,
    all_rules,
    count_by_severity,
    diagnostics_json,
    get_rule,
    has_errors,
    max_severity,
    render_text,
    run_rules,
    sort_diagnostics,
)
from repro.analysis.increrules import IncrementalContext, audit_incremental
from repro.analysis.invariants import (
    MappingContext,
    RetimingContext,
    VerificationError,
    certificate,
    lint_retiming,
    raise_on_errors,
    verify_mapping,
)
from repro.analysis.kernelrules import KernelContext, audit_compiled
from repro.analysis.sanitize import SanitizerViolation
from repro.analysis.structural import lint_circuit

__all__ = [
    "CircuitContext",
    "Diagnostic",
    "IncrementalContext",
    "KernelContext",
    "Location",
    "MappingContext",
    "RetimingContext",
    "Rule",
    "SanitizerViolation",
    "Severity",
    "VerificationError",
    "all_rules",
    "audit_compiled",
    "audit_incremental",
    "build_cycle_certificate",
    "build_schedule_certificate",
    "certificate",
    "check_cycle_certificate",
    "count_by_severity",
    "diagnostics_json",
    "get_rule",
    "has_errors",
    "lint_circuit",
    "lint_retiming",
    "max_severity",
    "raise_on_errors",
    "render_text",
    "replay_schedule",
    "run_rules",
    "sort_diagnostics",
    "verify_mapping",
]
