"""Static analysis: circuit linter and mapping-invariant verifier.

Public surface
--------------
* :mod:`repro.analysis.engine` — rule registry, :class:`Diagnostic`,
  severities, text/JSON rendering.
* :mod:`repro.analysis.structural` — lint rules over a raw
  :class:`~repro.netlist.graph.SeqCircuit` (CIRC0xx).
* :mod:`repro.analysis.invariants` — post-hoc verification of mapping
  and retiming results (MAP0xx), the ``certificate`` summary attached to
  ``SeqMapResult``, and :class:`VerificationError`.
* :mod:`repro.analysis.sarif` — SARIF 2.1.0 reports.
* :mod:`repro.analysis.baseline` — baseline suppression for CI.
* :mod:`repro.analysis.cli` — ``repro lint`` / ``python -m
  repro.analysis``.

Importing this package registers both rule packs.
"""

from repro.analysis.engine import (
    CircuitContext,
    Diagnostic,
    Location,
    Rule,
    Severity,
    all_rules,
    count_by_severity,
    diagnostics_json,
    get_rule,
    has_errors,
    max_severity,
    render_text,
    run_rules,
    sort_diagnostics,
)
from repro.analysis.invariants import (
    MappingContext,
    RetimingContext,
    VerificationError,
    certificate,
    lint_retiming,
    raise_on_errors,
    verify_mapping,
)
from repro.analysis.structural import lint_circuit

__all__ = [
    "CircuitContext",
    "Diagnostic",
    "Location",
    "MappingContext",
    "RetimingContext",
    "Rule",
    "Severity",
    "VerificationError",
    "all_rules",
    "certificate",
    "count_by_severity",
    "diagnostics_json",
    "get_rule",
    "has_errors",
    "lint_circuit",
    "lint_retiming",
    "max_severity",
    "raise_on_errors",
    "render_text",
    "run_rules",
    "sort_diagnostics",
    "verify_mapping",
]
