"""Kernel rule pack: CSR integrity audit of compiled circuits.

The flat-array kernel (:mod:`repro.kernel.csr`) is trusted by every hot
loop — packed copies, CSR pin walks, byte-level worker handoff — yet
until this pack it had no static-analysis coverage.  The ``"kernel"``
scope audits a :class:`~repro.kernel.csr.CompiledCircuit` against both
its own structural invariants and the object circuit it claims to
mirror:

========  ===========================  ========
KERN001   csr-indptr-sorted            error
KERN002   csr-pin-dedup                error
KERN003   pack-shift-bounds            error
KERN004   csr-byte-roundtrip           error
KERN005   csr-object-crosscheck        error
KERN006   vector-view-crosscheck       error
========  ===========================  ========

Run them with :func:`audit_compiled`; ``repro lint`` compiles every
linted circuit and runs the pack alongside the structural rules, so a
kernel regression shows up in the same SARIF stream as a malformed
netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.analysis.engine import (
    Diagnostic,
    Location,
    Severity,
    rule,
    run_rules,
    sort_diagnostics,
)
from repro.kernel.csr import (
    CompiledCircuit,
    compile_circuit,
    kind_code,
    pack_shift,
)
from repro.netlist.graph import SeqCircuit

#: ``to_bytes`` packs pins as little-endian int32.
_INT32_MAX = (1 << 31) - 1


@dataclass
class KernelContext:
    """Context of the ``"kernel"`` scope: a circuit and its CSR twin."""

    circuit: SeqCircuit
    compiled: CompiledCircuit
    file: Optional[str] = None

    def loc(self, nid: Optional[int] = None) -> Location:
        node = (
            None
            if nid is None or not 0 <= nid < len(self.circuit)
            else self.circuit.name_of(nid)
        )
        return Location(self.circuit.name, node, self.file)


def audit_compiled(
    circuit: SeqCircuit,
    compiled: Optional[CompiledCircuit] = None,
    file: Optional[str] = None,
    select: Optional[List[str]] = None,
) -> List[Diagnostic]:
    """Run the kernel pack over a circuit's compiled CSR.

    ``compiled`` defaults to the circuit's cached
    :meth:`~repro.netlist.graph.SeqCircuit.compiled` kernel — pass the
    instance an incremental run actually patched to audit *that* one.
    """
    if compiled is None:
        compiled = circuit.compiled()
    ctx = KernelContext(circuit, compiled, file)
    return sort_diagnostics(run_rules("kernel", ctx, select))


@rule(
    "KERN001",
    "csr-indptr-sorted",
    Severity.ERROR,
    "kernel",
    "CSR offsets must start at 0, be monotonically non-decreasing, and "
    "close exactly over the pin arrays; kinds must cover every node.",
)
def check_indptr(ctx: KernelContext) -> Iterator[Diagnostic]:
    cc = ctx.compiled
    if len(cc.offsets) != cc.n + 1:
        yield Diagnostic(
            "KERN001",
            Severity.ERROR,
            f"offsets has {len(cc.offsets)} entries for n={cc.n} "
            "(want n+1)",
            ctx.loc(),
        )
        return
    if len(cc.kinds) != cc.n:
        yield Diagnostic(
            "KERN001",
            Severity.ERROR,
            f"kinds has {len(cc.kinds)} entries for n={cc.n}",
            ctx.loc(),
        )
    if cc.offsets and cc.offsets[0] != 0:
        yield Diagnostic(
            "KERN001",
            Severity.ERROR,
            f"offsets[0] is {cc.offsets[0]}, want 0",
            ctx.loc(),
        )
    bad = sorted(
        u
        for u in range(cc.n)
        if cc.offsets[u + 1] < cc.offsets[u]
    )
    for u in bad:
        yield Diagnostic(
            "KERN001",
            Severity.ERROR,
            f"offsets decrease at node {u}: "
            f"{cc.offsets[u]} -> {cc.offsets[u + 1]}",
            ctx.loc(u),
        )
    if cc.offsets[-1] != len(cc.srcs) or len(cc.srcs) != len(cc.weights):
        yield Diagnostic(
            "KERN001",
            Severity.ERROR,
            f"pin arrays disagree: offsets close at {cc.offsets[-1]}, "
            f"srcs has {len(cc.srcs)}, weights has {len(cc.weights)}",
            ctx.loc(),
        )


@rule(
    "KERN002",
    "csr-pin-dedup",
    Severity.ERROR,
    "kernel",
    "Every CSR pin must reference a valid node with a non-negative "
    "weight, and no (src, weight) pin may repeat within one node "
    "(compile_circuit dedups; the kernels rely on it).",
)
def check_pins(ctx: KernelContext) -> Iterator[Diagnostic]:
    cc = ctx.compiled
    if len(cc.offsets) != cc.n + 1 or cc.offsets[-1] != len(cc.srcs):
        return  # shape is KERN001's finding; pin walk would be bogus
    for u in range(cc.n):
        lo, hi = cc.offsets[u], cc.offsets[u + 1]
        if lo > hi:
            continue
        pins = list(zip(cc.srcs[lo:hi], cc.weights[lo:hi]))
        for src, w in pins:
            if not 0 <= src < cc.n:
                yield Diagnostic(
                    "KERN002",
                    Severity.ERROR,
                    f"node {u} has a pin to out-of-range source {src}",
                    ctx.loc(u),
                )
            if w < 0:
                yield Diagnostic(
                    "KERN002",
                    Severity.ERROR,
                    f"node {u} has a negative pin weight {w}",
                    ctx.loc(u),
                )
        if len(set(pins)) != len(pins):
            dupes = sorted(
                {p for p in pins if pins.count(p) > 1}
            )
            yield Diagnostic(
                "KERN002",
                Severity.ERROR,
                f"node {u} repeats deduplicated pins: {dupes}",
                ctx.loc(u),
                data={"duplicates": [list(p) for p in dupes]},
            )


@rule(
    "KERN003",
    "pack-shift-bounds",
    Severity.ERROR,
    "kernel",
    "The packed-copy encoding must be consistent (shift = pack_shift(n), "
    "mask = 2^shift - 1, every id below the mask) and every pin must "
    "round-trip through pack/unpack.",
)
def check_pack(ctx: KernelContext) -> Iterator[Diagnostic]:
    cc = ctx.compiled
    want_shift = pack_shift(cc.n)
    if cc.shift != want_shift:
        yield Diagnostic(
            "KERN003",
            Severity.ERROR,
            f"shift is {cc.shift}, pack_shift({cc.n}) wants {want_shift}",
            ctx.loc(),
        )
    if cc.mask != (1 << cc.shift) - 1:
        yield Diagnostic(
            "KERN003",
            Severity.ERROR,
            f"mask {cc.mask:#x} does not match shift {cc.shift}",
            ctx.loc(),
        )
        return
    if cc.n > cc.mask + 1:
        yield Diagnostic(
            "KERN003",
            Severity.ERROR,
            f"node-id space {cc.n} exceeds the packable range "
            f"{cc.mask + 1}",
            ctx.loc(),
        )
        return
    if len(cc.offsets) != cc.n + 1 or cc.offsets[-1] != len(cc.srcs):
        return  # KERN001's finding
    for src, w in zip(cc.srcs, cc.weights):
        if not 0 <= src < cc.n or w < 0:
            continue  # KERN002's finding
        if cc.unpack(cc.pack(src, w)) != (src, w):
            yield Diagnostic(
                "KERN003",
                Severity.ERROR,
                f"pin ({src}, {w}) does not round-trip through "
                "pack/unpack",
                ctx.loc(src),
            )


@rule(
    "KERN004",
    "csr-byte-roundtrip",
    Severity.ERROR,
    "kernel",
    "to_bytes/from_bytes must reproduce the compiled circuit exactly "
    "(the parallel probe search ships these bytes to workers).",
)
def check_roundtrip(ctx: KernelContext) -> Iterator[Diagnostic]:
    cc = ctx.compiled
    if len(cc.offsets) != cc.n + 1 or cc.offsets[-1] != len(cc.srcs):
        return  # KERN001's finding; serialization would be garbage
    big = [
        x
        for arr in (cc.offsets, cc.srcs, cc.weights)
        for x in arr
        if not -_INT32_MAX - 1 <= x <= _INT32_MAX
    ]
    if big:
        yield Diagnostic(
            "KERN004",
            Severity.ERROR,
            f"{len(big)} value(s) overflow the int32 wire format "
            f"(first: {big[0]})",
            ctx.loc(),
        )
        return
    try:
        clone = CompiledCircuit.from_bytes(cc.to_bytes())
    except (ValueError, OverflowError) as exc:
        yield Diagnostic(
            "KERN004",
            Severity.ERROR,
            f"byte round-trip raised: {exc}",
            ctx.loc(),
        )
        return
    for field_name in ("n", "shift", "kinds", "offsets", "srcs", "weights"):
        if getattr(clone, field_name) != getattr(cc, field_name):
            yield Diagnostic(
                "KERN004",
                Severity.ERROR,
                f"byte round-trip changed {field_name}",
                ctx.loc(),
            )


@rule(
    "KERN005",
    "csr-object-crosscheck",
    Severity.ERROR,
    "kernel",
    "The CSR must mirror the object circuit: same node count, same kind "
    "codes, and per-node pins equal to the deduplicated fanin pairs.",
)
def check_crosscheck(ctx: KernelContext) -> Iterator[Diagnostic]:
    cc = ctx.compiled
    circuit = ctx.circuit
    if cc.n != len(circuit):
        yield Diagnostic(
            "KERN005",
            Severity.ERROR,
            f"CSR has {cc.n} nodes, circuit has {len(circuit)}",
            ctx.loc(),
        )
        return
    if len(cc.offsets) != cc.n + 1 or cc.offsets[-1] != len(cc.srcs):
        return  # KERN001's finding
    for u in range(cc.n):
        want_kind = kind_code(circuit.kind(u))
        if u < len(cc.kinds) and cc.kinds[u] != want_kind:
            yield Diagnostic(
                "KERN005",
                Severity.ERROR,
                f"kind code of node {u} is {cc.kinds[u]}, circuit says "
                f"{want_kind}",
                ctx.loc(u),
            )
        raw = [(p.src, p.weight) for p in circuit.fanins(u)]
        want = list(dict.fromkeys(raw)) if len(raw) > 1 else raw
        if cc.pins(u) != want:
            yield Diagnostic(
                "KERN005",
                Severity.ERROR,
                f"pins of node {u} diverge from the circuit: "
                f"CSR {cc.pins(u)}, circuit {want}",
                ctx.loc(u),
            )


@rule(
    "KERN006",
    "vector-view-crosscheck",
    Severity.ERROR,
    "kernel",
    "The numpy views behind the vector kernel — both the in-process "
    "conversion and the zero-copy windows over the serialized blob the "
    "workers attach — must mirror the scalar CSR arrays exactly "
    "(passes trivially when numpy is not installed).",
)
def check_vector_views(ctx: KernelContext) -> Iterator[Diagnostic]:
    from repro.kernel import batch

    if not batch.HAVE_NUMPY:
        return
    cc = ctx.compiled
    if len(cc.offsets) != cc.n + 1 or cc.offsets[-1] != len(cc.srcs):
        return  # shape is KERN001's finding; the views inherit it
    big = [
        x
        for arr in (cc.offsets, cc.srcs, cc.weights)
        for x in arr
        if not -_INT32_MAX - 1 <= x <= _INT32_MAX
    ]
    if big:
        return  # KERN004's finding; the int32 windows cannot represent it
    problems: List[str] = []
    for label, views in (
        ("views_from_compiled", batch.views_from_compiled(cc)),
        ("views_from_blob", batch.views_from_blob(cc.to_bytes())),
    ):
        try:
            if (views.n, views.shift, views.mask) != (
                cc.n,
                cc.shift,
                cc.mask,
            ):
                problems.append(
                    f"{label}: header (n, shift, mask) is "
                    f"({views.n}, {views.shift}, {views.mask:#x}), scalar "
                    f"CSR has ({cc.n}, {cc.shift}, {cc.mask:#x})"
                )
                continue
            for field_name in ("kinds", "offsets", "srcs", "weights"):
                view = getattr(views, field_name)
                want = list(getattr(cc, field_name))
                if view.tolist() != want:
                    problems.append(
                        f"{label}: {field_name} view diverges from the "
                        "scalar array"
                    )
        finally:
            views.close()
    for problem in problems:
        yield Diagnostic("KERN006", Severity.ERROR, problem, ctx.loc())


def fresh_crosscheck(
    circuit: SeqCircuit, compiled: CompiledCircuit
) -> bool:
    """True iff ``compiled`` serializes identically to a fresh compile.

    The strongest coherence statement the pack can make: a patched or
    cached CSR that is byte-identical to ``compile_circuit(circuit)``
    is indistinguishable from recompiling.
    """
    return compiled.to_bytes() == compile_circuit(circuit).to_bytes()
