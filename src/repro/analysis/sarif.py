"""SARIF 2.1.0 output for the circuit linter.

Emits the subset of the OASIS Static Analysis Results Interchange Format
that GitHub code scanning (and every SARIF viewer) consumes: one run,
one tool driver carrying the full rule metadata, one result per
diagnostic with both a logical location (``circuit::node``) and — when
the diagnostic came from a file — a physical location, plus a stable
partial fingerprint for result matching across runs.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from repro.analysis.engine import Diagnostic, Rule, Severity, sort_diagnostics

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/cong-wu-reproduction/turbosyn"
FINGERPRINT_KEY = "reproLint/v1"

#: SARIF ``level`` per severity (SARIF has no "info" level; it uses "note").
_LEVEL: Dict[Severity, str] = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.name.replace("-", " ")},
        "fullDescription": {"text": rule.description},
        "defaultConfiguration": {"level": _LEVEL[rule.severity]},
        "properties": {"scope": rule.scope},
    }


def _location(diag: Diagnostic) -> Dict[str, object]:
    logical: Dict[str, object] = {
        "name": diag.location.node or diag.location.circuit,
        "fullyQualifiedName": diag.location.qualified,
        "kind": "element" if diag.location.node else "module",
    }
    out: Dict[str, object] = {"logicalLocations": [logical]}
    if diag.location.file is not None:
        out["physicalLocation"] = {
            "artifactLocation": {"uri": diag.location.file},
            "region": {"startLine": 1, "startColumn": 1},
        }
    return out


def sarif_report(
    diags: Iterable[Diagnostic], rules: Sequence[Rule]
) -> Dict[str, object]:
    """Build the SARIF 2.1.0 document for one lint run.

    ``rules`` should list every rule that *ran* (clean rules included),
    so a consumer can distinguish "checked and clean" from "not checked".
    """
    ordered = sort_diagnostics(diags)
    rule_index = {rule.id: i for i, rule in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for diag in ordered:
        result: Dict[str, object] = {
            "ruleId": diag.rule_id,
            "level": _LEVEL[diag.severity],
            "message": {"text": diag.message},
            "locations": [_location(diag)],
            "partialFingerprints": {FINGERPRINT_KEY: diag.fingerprint},
        }
        if diag.rule_id in rule_index:
            result["ruleIndex"] = rule_index[diag.rule_id]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": [_rule_descriptor(r) for r in rules],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(diags: Iterable[Diagnostic], rules: Sequence[Rule]) -> str:
    return json.dumps(sarif_report(diags, rules), indent=2) + "\n"
