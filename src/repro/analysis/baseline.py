"""Baseline files: suppress previously recorded diagnostics.

A baseline is a JSON record of known findings, keyed by the stable
:attr:`~repro.analysis.engine.Diagnostic.fingerprint` (rule id + circuit
+ node; message wording excluded on purpose).  ``repro lint --baseline
known.json`` subtracts the recorded findings so CI fails only on *new*
ones; ``--write-baseline known.json`` records the current state.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence, Set, Tuple

from repro.analysis.engine import Diagnostic, sort_diagnostics
from repro.resilience.atomic import atomic_write_json

BASELINE_SCHEMA = 1


def baseline_payload(diags: Iterable[Diagnostic]) -> "dict[str, object]":
    """The JSON document recording the given findings."""
    findings = [
        {
            "fingerprint": d.fingerprint,
            "rule": d.rule_id,
            "location": d.location.qualified,
            "message": d.message,
        }
        for d in sort_diagnostics(diags)
    ]
    return {"schema": BASELINE_SCHEMA, "findings": findings}


def write_baseline(diags: Iterable[Diagnostic], path: str) -> None:
    """Record the current findings (atomically: temp + ``os.replace``)."""
    atomic_write_json(path, baseline_payload(diags), indent=2)


def load_baseline(path: str) -> Set[str]:
    """The fingerprints recorded in a baseline file."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: not a lint baseline (missing 'findings')")
    out: Set[str] = set()
    for entry in data["findings"]:
        fp = entry.get("fingerprint") if isinstance(entry, dict) else None
        if not isinstance(fp, str):
            raise ValueError(f"{path}: malformed baseline entry {entry!r}")
        out.add(fp)
    return out


def suppress(
    diags: Sequence[Diagnostic], fingerprints: Set[str]
) -> Tuple[List[Diagnostic], int]:
    """Split ``diags`` into (kept, suppressed-count) under a baseline."""
    kept = [d for d in diags if d.fingerprint not in fingerprints]
    return kept, len(diags) - len(kept)
