"""Rule-based static-analysis engine for circuits and mapping results.

The analysis subsystem certifies what the mapping core only promises: the
paper states invariants (Leiserson-Saxe retiming legality, K-feasibility
of every emitted LUT, label/cut-height consistency, the MDR-ratio lower
bound on the achieved period) that the algorithms *should* establish, and
this engine re-checks them after the fact, in the spirit of translation
validation.

Design
------
* A :class:`Rule` is an identified, severity-classified check over one
  *scope* — ``"circuit"`` (structural checks on a :class:`SeqCircuit`),
  ``"mapping"`` (invariant checks on a subject/mapped pair) or
  ``"retiming"`` (legality of a retiming vector).  Rule packs live in
  :mod:`repro.analysis.structural` and :mod:`repro.analysis.invariants`
  and register themselves on import.
* A check yields :class:`Diagnostic` records carrying the rule id, a
  severity, a human message and a :class:`Location` (circuit, node,
  source file) — precise enough to act on and stable enough to
  fingerprint for baselines (:mod:`repro.analysis.baseline`).
* :func:`run_rules` executes every registered rule of a scope against a
  context object and returns the sorted findings; renderers for text /
  JSON live here, SARIF 2.1.0 in :mod:`repro.analysis.sarif`.

Rules must never raise on malformed input — a linter that crashes on the
circuits it exists to reject is useless — so every check is written
against the raw graph accessors, not the validating helpers.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.netlist.graph import SeqCircuit


class Severity(enum.Enum):
    """Diagnostic severity; ``ERROR`` findings make verification fail."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return _SEVERITY_RANK[self]


_SEVERITY_RANK: Dict[Severity, int] = {
    Severity.ERROR: 0,
    Severity.WARNING: 1,
    Severity.INFO: 2,
}

#: Valid rule scopes.
SCOPES = (
    "circuit",
    "mapping",
    "retiming",
    "kernel",
    "incremental",
    "sanitizer",
    "cache",
)


def anchor_node(names: Iterable[str]) -> str:
    """Deterministic anchor for a diagnostic over an unordered node set.

    Fingerprints hash ``rule|circuit|node``, so a rule that reports a
    *group* of nodes (a cycle, an offender set, a dirty region) must
    not anchor at whatever element an iteration order produced first —
    set/dict order varies across Python versions and hash seeds, and a
    cycle can be entered at any rotation.  Sorting first makes the
    fingerprint a pure function of the finding.
    """
    return min(names)


def canonical_cycle(names: Sequence[str]) -> List[str]:
    """Rotate a cycle so it starts at its lexicographic minimum.

    The same cycle discovered from a different entry point then renders
    and fingerprints identically.
    """
    if not names:
        return []
    pivot = min(range(len(names)), key=names.__getitem__)
    return list(names[pivot:]) + list(names[:pivot])


@dataclass(frozen=True)
class Location:
    """Where a diagnostic points: circuit, optional node, optional file."""

    circuit: str
    node: Optional[str] = None
    file: Optional[str] = None

    @property
    def qualified(self) -> str:
        """``circuit::node`` (or just the circuit name)."""
        if self.node is None:
            return self.circuit
        return f"{self.circuit}::{self.node}"

    def render(self) -> str:
        if self.file is not None:
            return f"{self.file}: {self.qualified}"
        return self.qualified


@dataclass
class Diagnostic:
    """One finding of one rule at one location."""

    rule_id: str
    severity: Severity
    message: str
    location: Location
    #: Optional machine-readable facts (counts, offending values, ...).
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline suppression.

        Deliberately excludes the message so wording tweaks do not
        invalidate recorded baselines; two same-rule findings on the same
        node collapse, which is the behaviour a baseline wants.
        """
        key = f"{self.rule_id}|{self.location.circuit}|{self.location.node or ''}"
        return hashlib.sha1(key.encode()).hexdigest()[:16]

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "circuit": self.location.circuit,
            "fingerprint": self.fingerprint,
        }
        if self.location.node is not None:
            out["node"] = self.location.node
        if self.location.file is not None:
            out["file"] = self.location.file
        if self.data:
            out["data"] = self.data
        return out

    def render(self) -> str:
        return (
            f"{self.location.render()}: {self.severity.value}: "
            f"{self.rule_id}: {self.message}"
        )


#: A check receives its scope's context object and yields diagnostics.
CheckFn = Callable[..., Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """An identified check with a default severity and a scope."""

    id: str
    name: str
    severity: Severity
    scope: str
    description: str
    check: CheckFn

    def run(self, context: object) -> List[Diagnostic]:
        return list(self.check(context))


_REGISTRY: Dict[str, Rule] = {}


def register(new_rule: Rule) -> Rule:
    """Add a rule to the global registry (ids must be unique)."""
    if new_rule.scope not in SCOPES:
        raise ValueError(f"unknown rule scope {new_rule.scope!r}")
    if new_rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {new_rule.id!r}")
    _REGISTRY[new_rule.id] = new_rule
    return new_rule


def rule(
    rule_id: str,
    name: str,
    severity: Severity,
    scope: str,
    description: str,
) -> Callable[[CheckFn], CheckFn]:
    """Decorator registering ``fn`` as the check of a new rule."""

    def wrap(fn: CheckFn) -> CheckFn:
        register(Rule(rule_id, name, severity, scope, description, fn))
        return fn

    return wrap


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id]


def all_rules(
    scope: Optional[str] = None, select: Optional[Iterable[str]] = None
) -> List[Rule]:
    """Registered rules, optionally filtered by scope and explicit ids."""
    wanted = None if select is None else set(select)
    out = [
        r
        for r in _REGISTRY.values()
        if (scope is None or r.scope == scope)
        and (wanted is None or r.id in wanted)
    ]
    out.sort(key=lambda r: r.id)
    return out


@dataclass
class CircuitContext:
    """Context of the ``"circuit"`` scope: one circuit under lint."""

    circuit: SeqCircuit
    k: int = 5
    file: Optional[str] = None

    def loc(self, nid: Optional[int] = None) -> Location:
        node = None if nid is None else self.circuit.name_of(nid)
        return Location(self.circuit.name, node, self.file)


def sort_diagnostics(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Severity-major, then rule id, then location — a stable report order."""
    return sorted(
        diags,
        key=lambda d: (d.severity.rank, d.rule_id, d.location.qualified),
    )


def run_rules(
    scope: str,
    context: object,
    select: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Run every registered rule of ``scope`` against ``context``."""
    out: List[Diagnostic] = []
    for r in all_rules(scope, select):
        out.extend(r.run(context))
    return sort_diagnostics(out)


def max_severity(diags: Iterable[Diagnostic]) -> Optional[Severity]:
    best: Optional[Severity] = None
    for d in diags:
        if best is None or d.severity.rank < best.rank:
            best = d.severity
    return best


def has_errors(diags: Iterable[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diags)


def count_by_severity(diags: Iterable[Diagnostic]) -> Dict[str, int]:
    counts = {s.value: 0 for s in Severity}
    for d in diags:
        counts[d.severity.value] += 1
    return counts


def render_text(diags: Iterable[Diagnostic]) -> str:
    """One line per diagnostic, report order."""
    return "\n".join(d.render() for d in sort_diagnostics(diags))


def diagnostics_json(diags: Iterable[Diagnostic]) -> str:
    """JSON report: an envelope with per-severity counts and findings."""
    ordered = sort_diagnostics(diags)
    payload = {
        "schema": 1,
        "counts": count_by_severity(ordered),
        "diagnostics": [d.as_dict() for d in ordered],
    }
    return json.dumps(payload, indent=2) + "\n"
