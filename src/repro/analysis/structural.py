"""Structural rule pack: lint checks over a raw :class:`SeqCircuit`.

These rules re-check, with per-node diagnostics instead of a single
exception, everything :func:`repro.netlist.validate.ensure_mappable`
demands of a mapping input — plus redundancy smells (dead logic,
duplicate gates) that are legal but suspicious.  They are written against
the raw graph accessors and never raise, so arbitrarily malformed
circuits still produce a full report.

Rule ids
--------
========  ===========================  ========
CIRC001   comb-cycle                   error
CIRC002   dangling-node                warning
CIRC003   fanin-width                  error
CIRC004   edge-weight                  error
CIRC005   io-discipline                error
CIRC006   duplicate-gate               info
CIRC007   gate-arity                   error
========  ===========================  ========
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.analysis.engine import (
    CircuitContext,
    Diagnostic,
    Severity,
    canonical_cycle,
    rule,
)
from repro.netlist.graph import NodeKind
from repro.netlist.validate import (
    MAX_SHOWN,
    io_discipline_offenders,
    unobservable_nodes,
    unreachable_nodes,
    zero_weight_cycles,
)


@rule(
    "CIRC001",
    "comb-cycle",
    Severity.ERROR,
    "circuit",
    "Every cycle must carry at least one register; a zero-weight cycle "
    "is a combinational loop no retiming can legalize.",
)
def check_comb_cycle(ctx: CircuitContext) -> Iterator[Diagnostic]:
    for cycle in zero_weight_cycles(ctx.circuit):
        # Canonical rotation: the traversal can enter the cycle at any
        # node, so anchor (and fingerprint) at the smallest name.
        names = canonical_cycle(
            [ctx.circuit.name_of(v) for v in cycle]
        )
        shown = " -> ".join(names[:MAX_SHOWN])
        if len(names) > MAX_SHOWN:
            shown += f" -> ... ({len(names)} nodes)"
        yield Diagnostic(
            "CIRC001",
            Severity.ERROR,
            f"combinational cycle with zero register weight: {shown}",
            ctx.loc(ctx.circuit.id_of(names[0])),
            data={"cycle": names},
        )


@rule(
    "CIRC002",
    "dangling-node",
    Severity.WARNING,
    "circuit",
    "Nodes that reach no primary output (dead logic) or that no primary "
    "input reaches (undriven islands) survive mapping as waste.",
)
def check_dangling(ctx: CircuitContext) -> Iterator[Diagnostic]:
    unobservable = set(unobservable_nodes(ctx.circuit))
    unreachable = set(unreachable_nodes(ctx.circuit))
    for nid in sorted(unobservable | unreachable):
        reasons = []
        if nid in unobservable:
            reasons.append("reaches no primary output")
        if nid in unreachable:
            reasons.append("unreachable from the primary inputs")
        yield Diagnostic(
            "CIRC002",
            Severity.WARNING,
            f"dangling {ctx.circuit.kind(nid).value}: " + " and ".join(reasons),
            ctx.loc(nid),
        )


@rule(
    "CIRC003",
    "fanin-width",
    Severity.ERROR,
    "circuit",
    "A gate with more than K fanins cannot be covered by a K-LUT; run "
    "gate decomposition first.",
)
def check_fanin_width(ctx: CircuitContext) -> Iterator[Diagnostic]:
    for g in ctx.circuit.gates:
        width = len(ctx.circuit.fanins(g))
        if width > ctx.k:
            yield Diagnostic(
                "CIRC003",
                Severity.ERROR,
                f"gate has {width} fanins > K={ctx.k}",
                ctx.loc(g),
                data={"fanins": width, "k": ctx.k},
            )


@rule(
    "CIRC004",
    "edge-weight",
    Severity.ERROR,
    "circuit",
    "Edge weights are register counts and must be non-negative integers.",
)
def check_edge_weights(ctx: CircuitContext) -> Iterator[Diagnostic]:
    for nid in ctx.circuit.node_ids():
        for pin in ctx.circuit.fanins(nid):
            weight = pin.weight
            if not isinstance(weight, int) or isinstance(weight, bool):
                yield Diagnostic(
                    "CIRC004",
                    Severity.ERROR,
                    f"edge from {ctx.circuit.name_of(pin.src)!r} has "
                    f"non-integer weight {weight!r}",
                    ctx.loc(nid),
                )
            elif weight < 0:
                yield Diagnostic(
                    "CIRC004",
                    Severity.ERROR,
                    f"edge from {ctx.circuit.name_of(pin.src)!r} has "
                    f"negative weight {weight}",
                    ctx.loc(nid),
                    data={"weight": weight},
                )


@rule(
    "CIRC005",
    "io-discipline",
    Severity.ERROR,
    "circuit",
    "PIs have no fanins; POs have exactly one fanin, no fanouts, and "
    "are never read by another node.",
)
def check_io_discipline(ctx: CircuitContext) -> Iterator[Diagnostic]:
    offenders = io_discipline_offenders(ctx.circuit)
    messages = {
        "pi_with_fanins": "primary input has fanins",
        "po_bad_fanin_count": "primary output must have exactly one fanin",
        "po_with_fanouts": "primary output has fanouts",
        "reads_po": "node reads from a primary output",
    }
    for kind, nids in offenders.items():
        for nid in nids:
            yield Diagnostic(
                "CIRC005",
                Severity.ERROR,
                messages[kind],
                ctx.loc(nid),
                data={"violation": kind},
            )


@rule(
    "CIRC006",
    "duplicate-gate",
    Severity.INFO,
    "circuit",
    "Two gates computing the same function over the same fanin pins are "
    "structurally redundant; sharing one saves a LUT.",
)
def check_duplicate_gates(ctx: CircuitContext) -> Iterator[Diagnostic]:
    seen: Dict[Tuple[object, Tuple[Tuple[int, int], ...]], int] = {}
    for g in ctx.circuit.gates:
        func = ctx.circuit.func(g)
        if func is None:
            continue
        key = (func, tuple((p.src, p.weight) for p in ctx.circuit.fanins(g)))
        first = seen.setdefault(key, g)
        if first != g:
            yield Diagnostic(
                "CIRC006",
                Severity.INFO,
                f"duplicate gate definition: same function and fanins as "
                f"{ctx.circuit.name_of(first)!r}",
                ctx.loc(g),
                data={"duplicate_of": ctx.circuit.name_of(first)},
            )


@rule(
    "CIRC007",
    "gate-arity",
    Severity.ERROR,
    "circuit",
    "A gate's function arity must equal its fanin count (an unwired "
    "placeholder or a corrupted netlist otherwise).",
)
def check_gate_arity(ctx: CircuitContext) -> Iterator[Diagnostic]:
    for g in ctx.circuit.gates:
        func = ctx.circuit.func(g)
        width = len(ctx.circuit.fanins(g))
        if func is None:
            yield Diagnostic(
                "CIRC007",
                Severity.ERROR,
                "gate has no function",
                ctx.loc(g),
            )
        elif func.n != width:
            yield Diagnostic(
                "CIRC007",
                Severity.ERROR,
                f"function arity {func.n} != {width} fanins",
                ctx.loc(g),
                data={"arity": func.n, "fanins": width},
            )


def lint_circuit(ctx: CircuitContext) -> "list[Diagnostic]":
    """Run the full structural pack over one circuit context."""
    from repro.analysis.engine import run_rules

    return run_rules("circuit", ctx)
